package topology

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestUpDownLinear(t *testing.T) {
	tp := Linear(3, 1)
	ud := BuildUpDown(tp)
	sws := tp.Switches()
	if ud.Root != sws[0] {
		t.Errorf("root = %d, want %d", ud.Root, sws[0])
	}
	if ud.Level[sws[0]] != 0 || ud.Level[sws[1]] != 1 || ud.Level[sws[2]] != 2 {
		t.Errorf("levels = %v", ud.Level)
	}
	// Traversing from sw1 toward sw0 is up; the reverse is down.
	var l01 *Link
	for i := range tp.Links() {
		l := tp.Link(i)
		if (l.A == sws[0] && l.B == sws[1]) || (l.A == sws[1] && l.B == sws[0]) {
			l01 = l
		}
	}
	if l01 == nil {
		t.Fatal("no link between sw0 and sw1")
	}
	if ud.DirectionOf(l01, sws[1]) != Up {
		t.Error("sw1->sw0 should be up")
	}
	if ud.DirectionOf(l01, sws[0]) != Down {
		t.Error("sw0->sw1 should be down")
	}
}

func TestUpDownTieBreakByID(t *testing.T) {
	// Two switches at the same level joined by a cross link: the up
	// end must be the lower id.
	tp := New()
	root := tp.AddSwitch(4, "")
	a := tp.AddSwitch(4, "")
	b := tp.AddSwitch(4, "")
	tp.ConnectAny(root, a, SAN)
	tp.ConnectAny(root, b, SAN)
	cross := tp.Link(tp.ConnectAny(a, b, SAN))
	ud := BuildUpDownFrom(tp, root)
	if ud.Level[a] != 1 || ud.Level[b] != 1 {
		t.Fatalf("levels: %v", ud.Level)
	}
	if ud.DirectionOf(cross, b) != Up {
		t.Error("b->a should be up (a has lower id)")
	}
	if ud.DirectionOf(cross, a) != Down {
		t.Error("a->b should be down")
	}
}

func TestUpDownHostLinksHaveNoDirection(t *testing.T) {
	tp := Linear(2, 1)
	ud := BuildUpDown(tp)
	host := tp.Hosts()[0]
	hl := tp.LinkAt(host, 0)
	if ud.IsSwitchLink(hl) {
		t.Error("host link reported as switch link")
	}
	defer func() {
		if recover() == nil {
			t.Error("DirectionOf(host link) should panic")
		}
	}()
	ud.DirectionOf(hl, host)
}

func TestBuildUpDownFromNonSwitchPanics(t *testing.T) {
	tp := Linear(2, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BuildUpDownFrom(tp, tp.Hosts()[0])
}

func TestLegalTransition(t *testing.T) {
	up, down := Up, Down
	cases := []struct {
		prev *Direction
		next Direction
		want bool
	}{
		{nil, Up, true},
		{nil, Down, true},
		{&up, Up, true},
		{&up, Down, true},
		{&down, Down, true},
		{&down, Up, false}, // the forbidden transition
	}
	for i, c := range cases {
		if got := LegalTransition(c.prev, c.next); got != c.want {
			t.Errorf("case %d: LegalTransition = %v, want %v", i, got, c.want)
		}
	}
}

func TestTestbedShape(t *testing.T) {
	tp, n := Testbed()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 inter-switch links + 3 host links.
	if len(tp.Links()) != 6 {
		t.Errorf("links = %d, want 6", len(tp.Links()))
	}
	// Hosts on the right switches and port types per the hardware in
	// the paper (LAN NICs on host1/in-transit, SAN NIC on host2).
	if tp.LinkAt(n.Host1, 0).Type != LAN {
		t.Error("host1 should use a LAN port")
	}
	if tp.LinkAt(n.Host2, 0).Type != SAN {
		t.Error("host2 should use a SAN port")
	}
	if sw, _ := tp.SwitchOf(n.InTransit); sw != n.Switch1 {
		t.Error("in-transit host should be at switch 1")
	}
}

func TestFigure1ForbiddenPathExists(t *testing.T) {
	tp, f := Figure1()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	ud := BuildUpDownFrom(tp, f.Switches[0])
	// The route 4 -> 6 must be a down->? ... the essence of Figure 1:
	// traversing 4->6 then 6->1 must contain a down->up transition.
	var l46, l61 *Link
	for i := range tp.Links() {
		l := tp.Link(i)
		pair := func(x, y NodeID) bool {
			return (l.A == x && l.B == y) || (l.A == y && l.B == x)
		}
		if pair(f.Switches[4], f.Switches[6]) {
			l46 = l
		}
		if pair(f.Switches[6], f.Switches[1]) {
			l61 = l
		}
	}
	if l46 == nil || l61 == nil {
		t.Fatal("figure 1 links missing")
	}
	d1 := ud.DirectionOf(l46, f.Switches[4])
	d2 := ud.DirectionOf(l61, f.Switches[6])
	if !(d1 == Down && d2 == Up) {
		t.Errorf("4->6 is %v, 6->1 is %v; want down then up (the forbidden transition)", d1, d2)
	}
}

func TestGenerateBasics(t *testing.T) {
	tp, err := Generate(DefaultGenConfig(8, 42))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tp.Switches()); got != 8 {
		t.Errorf("switches = %d", got)
	}
	if got := len(tp.Hosts()); got != 32 {
		t.Errorf("hosts = %d", got)
	}
	if err := tp.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultGenConfig(16, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig(16, 7))
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Switches: 0}); err == nil {
		t.Error("0 switches accepted")
	}
	if _, err := Generate(GenConfig{Switches: 2, PortsPerSwitch: 4, HostsPerSwitch: 4}); err == nil {
		t.Error("all-host ports accepted")
	}
	if _, err := Generate(GenConfig{Switches: 2, PortsPerSwitch: 4, HostsPerSwitch: 3}); err == nil {
		// 1 port left for switch links: tree needs exactly 1 per
		// switch here, so this should actually succeed.
		t.Log("tight config succeeded (fine)")
	}
}

// Property: generated topologies are connected, valid, and their
// up*/down* orientation gives every switch a level.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 2
		tp, err := Generate(DefaultGenConfig(n, seed))
		if err != nil {
			return false
		}
		if tp.Validate() != nil {
			return false
		}
		ud := BuildUpDown(tp)
		for _, sw := range tp.Switches() {
			if _, ok := ud.Level[sw]; !ok {
				return false
			}
		}
		// Every switch-switch link is oriented.
		for i := range tp.Links() {
			l := tp.Link(i)
			isSwLink := tp.Node(l.A).Kind == KindSwitch && tp.Node(l.B).Kind == KindSwitch
			if isSwLink != ud.IsSwitchLink(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the up end of every oriented link is at a level <= the
// down end, and strictly closer or lower-id on ties.
func TestUpEndCloserToRootProperty(t *testing.T) {
	f := func(seed int64) bool {
		tp, err := Generate(DefaultGenConfig(12, seed))
		if err != nil {
			return false
		}
		ud := BuildUpDown(tp)
		for i := range tp.Links() {
			l := tp.Link(i)
			if !ud.IsSwitchLink(l) {
				continue
			}
			var upNode, downNode NodeID
			if ud.DirectionOf(l, l.A) == Up {
				upNode, downNode = l.B, l.A
			} else {
				upNode, downNode = l.A, l.B
			}
			lu, ld := ud.Level[upNode], ud.Level[downNode]
			if lu > ld {
				return false
			}
			if lu == ld && upNode > downNode {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	tp, _ := Testbed()
	ud := BuildUpDown(tp)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, tp, ud); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph myrinet", "switch1", "host1", "in-transit", "SAN", "LAN", "root"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Without orientation annotations.
	buf.Reset()
	if err := WriteDOT(&buf, tp, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "root") {
		t.Error("nil UpDown should not print root")
	}
}

func TestRingHasCycle(t *testing.T) {
	tp := Ring(4, 1)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 ring links + 4 host links.
	if len(tp.Links()) != 8 {
		t.Errorf("links = %d, want 8", len(tp.Links()))
	}
	ud := BuildUpDown(tp)
	// A ring of 4 has levels 0,1,1,2.
	lvls := map[int]int{}
	for _, sw := range tp.Switches() {
		lvls[ud.Level[sw]]++
	}
	if lvls[0] != 1 || lvls[1] != 2 || lvls[2] != 1 {
		t.Errorf("level histogram = %v", lvls)
	}
}
