package topology

import "fmt"

// DragonflyConfig parameterises the canonical Dragonfly generator
// (Kim et al.): groups of Routers fully-meshed locally, every router
// with Globals inter-group links and Hosts attached hosts. With the
// balanced maximal group count g = Routers*Globals + 1 every ordered
// group pair is joined by exactly one global link.
type DragonflyConfig struct {
	// Routers is the router count per group ("a"); >= 1.
	Routers int
	// Hosts is the host count per router ("p"); >= 1.
	Hosts int
	// Globals is the global (inter-group) link count per router ("h");
	// >= 1.
	Globals int
}

// DefaultDragonflyConfig returns the balanced Dragonfly (a=2h, p=h)
// with the largest host count not exceeding the requested size:
// hosts(h) = 2h^2*(2h^2+1), i.e. 72, 342, 1056, 2550, 5256 for
// h = 2..6. Sizes below 72 hosts still get the h=2 network.
func DefaultDragonflyConfig(hosts int) DragonflyConfig {
	h := 2
	for dragonflyHosts(h+1) <= hosts {
		h++
	}
	return DragonflyConfig{Routers: 2 * h, Hosts: h, Globals: h}
}

func dragonflyHosts(h int) int {
	return 2 * h * h * (2*h*h + 1)
}

// Dragonfly builds the balanced Dragonfly. Node order is
// deterministic: all routers group by group, then all hosts router by
// router, so ids and the derived orientations are stable.
//
// Port layout per router: ports [0, a-1) are the local full mesh
// (port index = peer router's index within the group, skipping self),
// ports [a-1, a-1+h) are global, ports [a-1+h, a-1+h+p) host-facing.
// Global wiring uses the consecutive arrangement: group i's q-th
// global slot (q = 0..a*h-1) reaches group (i+q+1) mod g, carried by
// router q/h on its global port q%h.
func Dragonfly(cfg DragonflyConfig) (*Topology, error) {
	a, p, h := cfg.Routers, cfg.Hosts, cfg.Globals
	if a < 1 || p < 1 || h < 1 {
		return nil, fmt.Errorf("topology: dragonfly needs routers, hosts and globals >= 1, got a=%d p=%d h=%d", a, p, h)
	}
	g := a*h + 1
	radix := (a - 1) + h + p
	t := New()
	routers := make([][]NodeID, g)
	for gi := 0; gi < g; gi++ {
		routers[gi] = make([]NodeID, a)
		for r := 0; r < a; r++ {
			routers[gi][r] = t.AddSwitch(radix, fmt.Sprintf("g%d.r%d", gi, r))
		}
	}
	// Local full mesh within each group. Router i's port toward router
	// j is j (for j < i) or j-1 (for j > i).
	localPort := func(i, j int) int {
		if j < i {
			return j
		}
		return j - 1
	}
	for gi := 0; gi < g; gi++ {
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				t.Connect(routers[gi][i], localPort(i, j), routers[gi][j], localPort(j, i), SAN)
			}
		}
	}
	// Global links: one per ordered offset, each unordered group pair
	// wired once from the lower-offset side. Group gi's slot q reaches
	// group (gi+q+1) mod g; the peer sees gi at its own slot
	// g-2-q (the complementary offset), so each cable is connected
	// exactly once when gi < peer-slot owner... Concretely: wire slot q
	// of group gi only when it is the canonical end (gi < peer group's
	// id is not stable under mod, so wire each unordered pair {gi, gj}
	// from min(gi, gj)).
	for gi := 0; gi < g; gi++ {
		for q := 0; q < a*h; q++ {
			gj := (gi + q + 1) % g
			if gj < gi {
				continue // wired from the other side
			}
			// Peer slot: the offset from gj back to gi.
			qj := (gi - gj - 1 + 2*g) % g
			t.Connect(routers[gi][q/h], (a-1)+q%h, routers[gj][qj/h], (a-1)+qj%h, SAN)
		}
	}
	// Hosts, router by router.
	for gi := 0; gi < g; gi++ {
		for r := 0; r < a; r++ {
			for k := 0; k < p; k++ {
				host := t.AddHost("")
				t.Connect(host, 0, routers[gi][r], (a-1)+h+k, LAN)
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
