package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzSerializeRoundTrip hardens the text topology codec the parallel
// runner depends on: sweep specs carry topologies in serialized form
// so each worker deserializes a private copy, which makes Write/Read
// fidelity part of the determinism contract. The parser must never
// panic on arbitrary input, and anything it accepts must round-trip
// to a fixed point: Read -> Write -> Read -> Write yields identical
// bytes and an equivalent topology.
func FuzzSerializeRoundTrip(f *testing.F) {
	// Seed with real serialized topologies.
	seed := func(t *Topology) {
		var buf bytes.Buffer
		if err := Write(&buf, t); err == nil {
			f.Add(buf.String())
		}
	}
	testbed, _ := Testbed()
	seed(testbed)
	if gen, err := Generate(DefaultGenConfig(8, 5)); err == nil {
		seed(gen)
	}
	f.Add("switch 4\nhost a\nlink 0 0 1 0 SAN\n")
	f.Add("# comment\nhost\nhost\n")
	f.Add("switch -1\n")
	f.Add("link 0 0 0 0 SAN\n")
	f.Fuzz(func(t *testing.T, text string) {
		topo, err := Read(strings.NewReader(text))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		var first bytes.Buffer
		if err := Write(&first, topo); err != nil {
			t.Fatalf("write of parsed topology failed: %v", err)
		}
		again, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written topology failed: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := Write(&second, again); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
				first.String(), second.String())
		}
		// Structural equivalence of the round-tripped topology.
		if again.NumNodes() != topo.NumNodes() || len(again.Links()) != len(topo.Links()) {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d links",
				topo.NumNodes(), again.NumNodes(), len(topo.Links()), len(again.Links()))
		}
		for i := 0; i < topo.NumNodes(); i++ {
			a, b := topo.Node(NodeID(i)), again.Node(NodeID(i))
			if a.Kind != b.Kind || a.Ports != b.Ports || a.Name != b.Name {
				t.Fatalf("node %d changed: %+v vs %+v", i, a, b)
			}
		}
	})
}
