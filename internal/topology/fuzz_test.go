package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzSerializeRoundTrip hardens the text topology codec the parallel
// runner depends on: sweep specs carry topologies in serialized form
// so each worker deserializes a private copy, which makes Write/Read
// fidelity part of the determinism contract. The parser must never
// panic on arbitrary input, and anything it accepts must round-trip
// to a fixed point: Read -> Write -> Read -> Write yields identical
// bytes and an equivalent topology.
func FuzzSerializeRoundTrip(f *testing.F) {
	// Seed with real serialized topologies.
	seed := func(t *Topology) {
		var buf bytes.Buffer
		if err := Write(&buf, t); err == nil {
			f.Add(buf.String())
		}
	}
	testbed, _ := Testbed()
	seed(testbed)
	if gen, err := Generate(DefaultGenConfig(8, 5)); err == nil {
		seed(gen)
	}
	f.Add("switch 4\nhost a\nlink 0 0 1 0 SAN\n")
	f.Add("# comment\nhost\nhost\n")
	f.Add("switch -1\n")
	f.Add("link 0 0 0 0 SAN\n")
	f.Fuzz(func(t *testing.T, text string) {
		topo, err := Read(strings.NewReader(text))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		var first bytes.Buffer
		if err := Write(&first, topo); err != nil {
			t.Fatalf("write of parsed topology failed: %v", err)
		}
		again, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written topology failed: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := Write(&second, again); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
				first.String(), second.String())
		}
		// Structural equivalence of the round-tripped topology.
		if again.NumNodes() != topo.NumNodes() || len(again.Links()) != len(topo.Links()) {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d links",
				topo.NumNodes(), again.NumNodes(), len(topo.Links()), len(again.Links()))
		}
		for i := 0; i < topo.NumNodes(); i++ {
			a, b := topo.Node(NodeID(i)), again.Node(NodeID(i))
			if a.Kind != b.Kind || a.Ports != b.Ports || a.Name != b.Name {
				t.Fatalf("node %d changed: %+v vs %+v", i, a, b)
			}
		}
	})
}

// FuzzFatTree hardens the fat-tree generator: any parameter pair must
// either be rejected with an error or produce a structurally valid,
// connected topology with the closed-form host count — never panic.
func FuzzFatTree(f *testing.F) {
	f.Add(4, 2)
	f.Add(2, 1)
	f.Add(3, 1) // odd K: must error
	f.Add(8, 0) // no hosts: must error
	f.Fuzz(func(t *testing.T, k, hpe int) {
		// Bound the build cost, not the validity space: large valid
		// parameters are exercised by the engine property suite.
		if k > 12 || hpe > 12 || k < -4 || hpe < -4 {
			t.Skip()
		}
		topo, err := FatTree(FatTreeConfig{K: k, HostsPerEdge: hpe})
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("FatTree(K=%d hpe=%d) built an invalid topology: %v", k, hpe, err)
		}
		if got, want := len(topo.Hosts()), k*(k/2)*hpe; got != want {
			t.Fatalf("FatTree(K=%d hpe=%d): %d hosts, want %d", k, hpe, got, want)
		}
		BuildUpDown(topo)
	})
}

// FuzzDragonfly does the same for the Dragonfly generator.
func FuzzDragonfly(f *testing.F) {
	f.Add(4, 2, 2)
	f.Add(2, 1, 1)
	f.Add(0, 1, 1) // must error
	f.Fuzz(func(t *testing.T, a, p, h int) {
		if a > 10 || p > 8 || h > 4 || a < -4 || p < -4 || h < -4 {
			t.Skip()
		}
		topo, err := Dragonfly(DragonflyConfig{Routers: a, Hosts: p, Globals: h})
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("Dragonfly(a=%d p=%d h=%d) built an invalid topology: %v", a, p, h, err)
		}
		g := a*h + 1
		if got, want := len(topo.Hosts()), g*a*p; got != want {
			t.Fatalf("Dragonfly(a=%d p=%d h=%d): %d hosts, want %d", a, p, h, got, want)
		}
		BuildUpDown(topo)
	})
}
