// Package faults drives deterministic fault-injection campaigns
// against a simulated cluster. A campaign is a seeded timeline of
// typed events — link failures and repairs, bit-error bursts, NIC
// stalls, buffer-pool exhaustion, scout loss during mapping — that the
// controller executes as ordinary simulation events. Because every
// event is generated up-front from the campaign seed and applied at a
// fixed simulated time, a campaign replays byte-for-byte: the fault
// process is exactly as reproducible as the simulation itself, which
// is what lets fault experiments run under the parallel experiment
// runner without losing determinism.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/topology"
	"repro/internal/units"
)

// Kind is the type of one fault event.
type Kind int

const (
	// LinkDown fails a link: headers entering it are killed and
	// packets streaming across it are corrupted.
	LinkDown Kind = iota
	// LinkUp repairs a previously failed link.
	LinkUp
	// BitErrorBurst corrupts packets crossing Link with probability
	// BER for Duration, then clears.
	BitErrorBurst
	// NICStall freezes one host's NIC: nothing leaves its send queue
	// and arriving packets are flushed unreceived.
	NICStall
	// NICResume unfreezes a stalled NIC.
	NICResume
	// PoolExhaust forces the host's receive buffer pool to behave as
	// if permanently full (every arrival overflows).
	PoolExhaust
	// PoolRestore ends a PoolExhaust episode.
	PoolRestore
	// ScoutLoss arms the mapping-packet fault process: every
	// DropEvery-th scout is lost and every DupEvery-th duplicated
	// (0,0 disarms).
	ScoutLoss
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case BitErrorBurst:
		return "bit-error-burst"
	case NICStall:
		return "nic-stall"
	case NICResume:
		return "nic-resume"
	case PoolExhaust:
		return "pool-exhaust"
	case PoolRestore:
		return "pool-restore"
	case ScoutLoss:
		return "scout-loss"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one entry in a campaign timeline.
type Event struct {
	At   units.Time
	Kind Kind

	Link     int             // LinkDown/LinkUp/BitErrorBurst
	Host     topology.NodeID // NICStall/NICResume/PoolExhaust/PoolRestore
	BER      float64         // BitErrorBurst
	Duration units.Time      // BitErrorBurst

	DropEvery int // ScoutLoss
	DupEvery  int // ScoutLoss
}

// String renders one event compactly.
func (e Event) String() string {
	switch e.Kind {
	case LinkDown, LinkUp:
		return fmt.Sprintf("%v %s link=%d", e.At, e.Kind, e.Link)
	case BitErrorBurst:
		return fmt.Sprintf("%v %s link=%d ber=%g dur=%v", e.At, e.Kind, e.Link, e.BER, e.Duration)
	case NICStall, NICResume, PoolExhaust, PoolRestore:
		return fmt.Sprintf("%v %s host=%d", e.At, e.Kind, e.Host)
	case ScoutLoss:
		return fmt.Sprintf("%v %s drop=%d dup=%d", e.At, e.Kind, e.DropEvery, e.DupEvery)
	default:
		return fmt.Sprintf("%v %s", e.At, e.Kind)
	}
}

// Campaign is a named, fully materialised fault timeline. Events are
// kept sorted by time; ties preserve insertion order (the controller
// relies on the engine's stable event ordering for simultaneous
// events).
type Campaign struct {
	Name   string
	Seed   int64
	Events []Event
}

// String summarises the campaign for experiment reports.
func (c Campaign) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q (seed %d, %d events)", c.Name, c.Seed, len(c.Events))
	return b.String()
}

// sorted returns the events in stable time order.
func (c Campaign) sorted() []Event {
	evs := append([]Event(nil), c.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// GenConfig bounds campaign generation.
type GenConfig struct {
	// Horizon is the window faults are injected into.
	Horizon units.Time
	// Events is how many fault episodes to generate (a transient
	// fault's repair event does not count against this).
	Events int
	// Transient is the probability a generated fault is repaired
	// within the horizon (the rest stay broken and exercise the
	// dead-peer/reroute machinery). Default 0.7 when zero.
	Transient float64
}

// Generate materialises a random campaign for a topology from a seed.
// The same (seed, topology, config) always yields the same campaign:
// generation happens entirely up-front on a private RNG, never during
// the simulation.
//
// Only switch-switch links are failed — killing a host's only uplink
// partitions that host trivially, which is a less interesting campaign
// than mid-fabric faults (and the generator's job is breadth, not
// cruelty; explicit campaigns can still down host links).
func Generate(seed int64, t *topology.Topology, cfg GenConfig) Campaign {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Horizon <= 0 {
		cfg.Horizon = 10 * units.Millisecond
	}
	if cfg.Events <= 0 {
		cfg.Events = 4
	}
	if cfg.Transient == 0 {
		cfg.Transient = 0.7
	}
	var swLinks []int
	for _, l := range t.Links() {
		if t.Node(l.A).Kind == topology.KindSwitch && t.Node(l.B).Kind == topology.KindSwitch && !l.IsLoopback() {
			swLinks = append(swLinks, l.ID)
		}
	}
	hosts := t.Hosts()
	c := Campaign{Name: fmt.Sprintf("gen-%d", seed), Seed: seed}
	at := func() units.Time {
		return units.Time(rng.Int63n(int64(cfg.Horizon)))
	}
	repairAt := func(start units.Time) (units.Time, bool) {
		if rng.Float64() >= cfg.Transient {
			return 0, false
		}
		rest := int64(cfg.Horizon - start)
		if rest <= 1 {
			return 0, false
		}
		return start + 1 + units.Time(rng.Int63n(rest)), true
	}
	for i := 0; i < cfg.Events; i++ {
		roll := rng.Intn(10)
		switch {
		case roll < 4 && len(swLinks) > 0: // 40% link faults
			link := swLinks[rng.Intn(len(swLinks))]
			start := at()
			c.Events = append(c.Events, Event{At: start, Kind: LinkDown, Link: link})
			if up, ok := repairAt(start); ok {
				c.Events = append(c.Events, Event{At: up, Kind: LinkUp, Link: link})
			}
		case roll < 6 && len(swLinks) > 0: // 20% error bursts
			link := swLinks[rng.Intn(len(swLinks))]
			start := at()
			dur := 1 + units.Time(rng.Int63n(int64(cfg.Horizon)/4+1))
			ber := 0.05 + 0.4*rng.Float64()
			c.Events = append(c.Events, Event{At: start, Kind: BitErrorBurst, Link: link, BER: ber, Duration: dur})
		case roll < 8 && len(hosts) > 0: // 20% NIC stalls
			h := hosts[rng.Intn(len(hosts))]
			start := at()
			c.Events = append(c.Events, Event{At: start, Kind: NICStall, Host: h})
			if up, ok := repairAt(start); ok {
				c.Events = append(c.Events, Event{At: up, Kind: NICResume, Host: h})
			}
		default: // 20% pool exhaustion
			h := hosts[rng.Intn(len(hosts))]
			start := at()
			c.Events = append(c.Events, Event{At: start, Kind: PoolExhaust, Host: h})
			if up, ok := repairAt(start); ok {
				c.Events = append(c.Events, Event{At: up, Kind: PoolRestore, Host: h})
			}
		}
	}
	return c
}
