package faults_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gm"
	"repro/internal/mcp"
	"repro/internal/recovery"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// TestFlapSequences drives the failure detector through NIC flap
// timelines and checks the suspected/confirmed distinction: an outage
// shorter than the detection window is retracted (suspected at most,
// never confirmed), a sustained outage is confirmed, and a
// down-up-down flap inside one window first earns a retraction and
// only the second outage the verdict.
func TestFlapSequences(t *testing.T) {
	const us = units.Microsecond
	cases := []struct {
		name   string
		events []faults.Event // Host filled in by the runner

		wantConfirmed uint64 // detector confirmations over the run
		wantDeadAtEnd int    // Controller.DeadHosts() after quiescence
		wantRestored  bool   // at least one retraction happened
		wantAlive     bool   // final detector belief about the victim
	}{
		{
			name: "blip-inside-detection-window",
			events: []faults.Event{
				{At: 100 * us, Kind: faults.NICStall},
				{At: 260 * us, Kind: faults.NICResume},
			},
			wantConfirmed: 0,
			wantDeadAtEnd: 0,
			wantAlive:     true,
		},
		{
			name: "sustained-outage",
			events: []faults.Event{
				{At: 100 * us, Kind: faults.NICStall},
			},
			wantConfirmed: 1,
			wantDeadAtEnd: 1,
		},
		{
			name: "down-up-down-within-window",
			events: []faults.Event{
				{At: 100 * us, Kind: faults.NICStall},
				{At: 400 * us, Kind: faults.NICResume},
				{At: 500 * us, Kind: faults.NICStall},
			},
			wantConfirmed: 1,
			wantDeadAtEnd: 1,
			wantRestored:  true,
		},
		{
			name: "down-up-down-then-heal",
			events: []faults.Event{
				{At: 100 * us, Kind: faults.NICStall},
				{At: 400 * us, Kind: faults.NICResume},
				{At: 500 * us, Kind: faults.NICStall},
				{At: 1600 * us, Kind: faults.NICResume},
			},
			wantConfirmed: 1,
			wantDeadAtEnd: 0, // resurrected by the standing probes
			wantRestored:  true,
			wantAlive:     true,
		},
	}
	topo, f := topology.Figure1()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine()
			net := fabric.New(eng, topo, fabric.DefaultParams())
			ud := topology.BuildUpDown(topo)
			tbl, err := routing.BuildTable(topo, ud, routing.ITBRouting)
			if err != nil {
				t.Fatal(err)
			}
			var hosts []*gm.Host
			for _, h := range topo.Hosts() {
				hosts = append(hosts, gm.NewHost(eng, mcp.New(net, h, mcp.DefaultConfig(mcp.ITB)), tbl, gm.DefaultParams()))
			}
			mgr, err := recovery.NewManager(recovery.DefaultConfig(2000*us), recovery.Target{
				Eng: eng, Topo: topo, UD: ud, Alg: routing.ITBRouting,
				Base: tbl, Hosts: hosts, Monitor: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			mgr.Start()
			victim := f.Hosts[3]
			camp := faults.Campaign{Name: tc.name, Events: tc.events}
			for i := range camp.Events {
				camp.Events[i].Host = victim
			}
			ctl, err := faults.Attach(faults.Target{
				Eng: eng, Net: net, Topo: topo, Hosts: hosts, Recovery: mgr,
			}, camp)
			if err != nil {
				t.Fatal(err)
			}
			eng.Run()

			st := mgr.Stats()
			if st.HostsConfirmed != tc.wantConfirmed {
				t.Errorf("confirmations = %d, want %d", st.HostsConfirmed, tc.wantConfirmed)
			}
			if got := ctl.DeadHosts(); got != tc.wantDeadAtEnd {
				t.Errorf("DeadHosts() = %d, want %d", got, tc.wantDeadAtEnd)
			}
			if tc.wantRestored && st.HostsRestored == 0 && st.Resurrections == 0 {
				t.Error("flap was never retracted (no restore/resurrection)")
			}
			if tc.wantAlive && mgr.StateOf(victim) != recovery.Alive {
				t.Errorf("final state = %v, want Alive", mgr.StateOf(victim))
			}
			if !tc.wantAlive && mgr.StateOf(victim) == recovery.Alive && tc.wantDeadAtEnd > 0 {
				t.Errorf("final state = Alive, want dead")
			}
			// No suspicion may linger once the engine quiesced: every
			// suspect either recovered or was confirmed.
			if got := ctl.Suspected(); got != 0 {
				t.Errorf("Suspected() = %d after quiescence, want 0", got)
			}
			cs := ctl.Stats()
			if cs.PeersConfirmed != tc.wantDeadAtEnd {
				t.Errorf("Stats().PeersConfirmed = %d, want %d", cs.PeersConfirmed, tc.wantDeadAtEnd)
			}
			if cs.EventsApplied != len(tc.events) {
				t.Errorf("EventsApplied = %d, want %d", cs.EventsApplied, len(tc.events))
			}
		})
	}
}
