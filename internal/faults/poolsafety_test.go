package faults_test

import (
	"fmt"
	"testing"

	"math/rand"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gm"
	"repro/internal/mcp"
	"repro/internal/packet"
	"repro/internal/recovery"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// The hot-path overhaul recycles packets through a pool, and a fault
// campaign is the adversarial case for it: link-down kills, CRC
// flushes, buffer-pool drops and the dead-peer verdict all abandon
// packets mid-flight, and a packet returned to the pool while any of
// those paths still holds a reference would resurface as another
// packet's corrupted payload. This test runs campaigns with every
// payload byte carrying a message-derived pattern and verifies each
// delivered message byte-for-byte — a premature Put anywhere shows up
// as a pattern mismatch. It also replays each campaign and requires
// the outcome to be identical, pinning determinism under pooling.
func TestCampaignUnderPoolsConservesPayloads(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultGenConfig(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{3, 11, 42, 77, 1001}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		first := runPoolCampaign(t, topo, seed)
		again := runPoolCampaign(t, topo, seed)
		if first != again {
			t.Errorf("campaign seed %d: outcome not reproducible under pooling:\n first: %s\nsecond: %s",
				seed, first, again)
		}
	}
}

// runPoolCampaign runs one fault campaign with patterned payloads,
// fails the test on any payload corruption or accounting violation,
// and returns a deterministic outcome summary for replay comparison.
func runPoolCampaign(t *testing.T, topo *topology.Topology, seed int64) string {
	t.Helper()
	eng := sim.NewEngine()
	net := fabric.New(eng, topo, fabric.DefaultParams())
	ud := topology.BuildUpDown(topo)
	tbl, err := routing.BuildTable(topo, ud, routing.ITBRouting)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mcp.DefaultConfig(mcp.ITB)
	mcfg.BufferPool = true
	mcfg.RecvBuffers = 2 // tight: overflow drops force retransmission
	par := gm.DefaultParams()
	par.MTU = 256 // multi-fragment messages stress clone/reassembly
	par.AckTimeout = 100 * units.Microsecond
	par.BackoffFactor = 2
	par.MaxAckTimeout = 1 * units.Millisecond
	par.DeadPeerTimeouts = 4
	hostIDs := topo.Hosts()
	hosts := make([]*gm.Host, 0, len(hostIDs))
	mcps := make([]*mcp.MCP, 0, len(hostIDs))
	byID := make(map[topology.NodeID]*gm.Host)
	for _, h := range hostIDs {
		m := mcp.New(net, h, mcfg)
		gh := gm.NewHost(eng, m, tbl, par)
		hosts = append(hosts, gh)
		mcps = append(mcps, m)
		byID[h] = gh
	}

	horizon := 800 * units.Microsecond
	mgr, err := recovery.NewManager(recovery.DefaultConfig(4*horizon), recovery.Target{
		Eng: eng, Topo: topo, UD: ud, Alg: routing.ITBRouting,
		Base: tbl, Hosts: hosts, Monitor: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	camp := faults.Generate(seed, topo, faults.GenConfig{Horizon: horizon, Events: 5})
	if _, err := faults.Attach(faults.Target{
		Eng: eng, Net: net, Topo: topo,
		Hosts: hosts, Recovery: mgr,
	}, camp); err != nil {
		t.Fatal(err)
	}

	const msgs = 24
	rng := rand.New(rand.NewSource(seed ^ 0x900d))
	delivered := make(map[uint64]int)
	acked := make(map[uint64]bool)
	failed := make(map[uint64]bool)
	corrupt := 0
	for _, gh := range hosts {
		gh.OnMessage = func(_ topology.NodeID, payload []byte, _ units.Time) {
			if len(payload) < 8 {
				corrupt++
				return
			}
			var id uint64
			for i := 0; i < 8; i++ {
				id |= uint64(payload[i]) << (8 * i)
			}
			delivered[id]++
			for i := 8; i < len(payload); i++ {
				if payload[i] != patternByte(id, i) {
					t.Errorf("campaign seed %d: message %d payload byte %d = %#02x, want %#02x (pool recycled a live packet?)",
						seed, id, i, payload[i], patternByte(id, i))
					corrupt++
					return
				}
			}
		}
	}
	for id := uint64(0); id < msgs; id++ {
		src := hostIDs[rng.Intn(len(hostIDs))]
		dst := hostIDs[rng.Intn(len(hostIDs))]
		for dst == src {
			dst = hostIDs[rng.Intn(len(hostIDs))]
		}
		payload := make([]byte, 16+rng.Intn(1024))
		for i := 0; i < 8; i++ {
			payload[i] = byte(id >> (8 * i))
		}
		for i := 8; i < len(payload); i++ {
			payload[i] = patternByte(id, i)
		}
		id := id
		at := units.Time(rng.Int63n(int64(horizon)))
		eng.ScheduleAt(at, func() {
			err := byID[src].SendTracked(dst, payload,
				func() { acked[id] = true },
				func() { failed[id] = true })
			if err != nil {
				failed[id] = true
			}
		})
	}

	out0 := packet.PoolOutstanding()
	steps := 0
	for eng.Step() {
		if steps++; steps > 5_000_000 {
			t.Fatalf("campaign seed %d: no quiescence after %d events (t=%v)", seed, steps, eng.Now())
		}
	}

	for id := uint64(0); id < msgs; id++ {
		switch {
		case delivered[id] > 1:
			t.Errorf("campaign seed %d: message %d delivered %d times", seed, id, delivered[id])
		case acked[id] && delivered[id] != 1:
			t.Errorf("campaign seed %d: message %d acked but delivered %d times", seed, id, delivered[id])
		case !acked[id] && !failed[id]:
			t.Errorf("campaign seed %d: message %d silently lost", seed, id)
		}
	}

	sum := fmt.Sprintf("t=%v steps=%d corrupt=%d", eng.Now(), steps, corrupt)
	for id := uint64(0); id < msgs; id++ {
		sum += fmt.Sprintf(" %d:%d/%v/%v", id, delivered[id], acked[id], failed[id])
	}

	// Pool steady state: every packet checked out during the campaign
	// must be released by the layer that last held it. A campaign can
	// legitimately end with a NIC still wedged (a stall event with no
	// resume inside the horizon) holding queued wire clones in its send
	// SRAM, so revive every NIC, drain the aftermath, and only then
	// require the pool residue to be exactly zero. Before the drop-path
	// recycling fix this residue grew with the drop count — the
	// unbounded-growth leak this assertion pins.
	for _, m := range mcps {
		m.SetStalled(false)
		m.SetPoolExhausted(false)
	}
	for eng.Step() {
		if steps++; steps > 5_000_000 {
			t.Fatalf("campaign seed %d: no quiescence draining revived NICs", seed)
		}
	}
	if leaked := packet.PoolOutstanding() - out0; leaked != 0 {
		t.Errorf("campaign seed %d: %d pool packets still outstanding after full drain", seed, leaked)
	}
	return sum
}

// patternByte is the expected content of payload byte i of message id.
func patternByte(id uint64, i int) byte {
	return byte(uint64(i)*1103515245 + id*12345 + 7)
}

// TestPoolSteadyStateUnderSustainedDrops hammers one receiver with
// fire-and-forget traffic through a single receive buffer, so a large
// fraction of the wire packets die as buffer-pool drops. Every checked
// out pool packet — the delivered ones, the dropped ones, and the
// fire-and-forget originals — must be back in the pool at quiescence.
// Before the drop-path recycling fix this leaked one packet per drop
// plus one per send (the DisableAcks pump abandoned its originals), a
// residue proportional to traffic volume.
func TestPoolSteadyStateUnderSustainedDrops(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultGenConfig(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.New(eng, topo, fabric.DefaultParams())
	ud := topology.BuildUpDown(topo)
	tbl, err := routing.BuildTable(topo, ud, routing.ITBRouting)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mcp.DefaultConfig(mcp.ITB)
	mcfg.BufferPool = true
	mcfg.RecvBuffers = 1 // one buffer: incast overflows constantly
	par := gm.DefaultParams()
	par.DisableAcks = true
	hostIDs := topo.Hosts()
	mcps := make([]*mcp.MCP, len(hostIDs))
	hosts := make([]*gm.Host, len(hostIDs))
	for i, h := range hostIDs {
		mcps[i] = mcp.New(net, h, mcfg)
		hosts[i] = gm.NewHost(eng, mcps[i], tbl, par)
	}

	dst := hostIDs[0]
	payload := make([]byte, 512)
	out0 := packet.PoolOutstanding()
	const rounds, perRound = 40, 4
	for r := 0; r < rounds; r++ {
		at := units.Time(r) * 2 * units.Microsecond
		for s := 1; s <= perRound; s++ {
			src := hosts[s]
			eng.ScheduleAt(at, func() {
				if err := src.Send(dst, payload); err != nil {
					t.Errorf("send: %v", err)
				}
			})
		}
	}
	steps := 0
	for eng.Step() {
		if steps++; steps > 5_000_000 {
			t.Fatalf("no quiescence after %d events", steps)
		}
	}
	var drops uint64
	for _, m := range mcps {
		drops += m.Stats().PoolDrops
	}
	if drops == 0 {
		t.Fatal("campaign produced no buffer-pool drops; the test lost its teeth")
	}
	if leaked := packet.PoolOutstanding() - out0; leaked != 0 {
		t.Errorf("%d pool packets outstanding after quiescence (%d drops); drop paths are leaking again", leaked, drops)
	}
}
