package faults

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/mcp"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
)

// Target is the cluster a campaign attaches to. Net/Topo/Eng are
// required; Hosts enables NIC-level faults and dead-peer observation;
// Recovery, when set, is the self-healing subsystem the controller
// feeds GM's dead-peer verdicts to — detection latency, route
// republication and convergence then all happen inside the
// simulation (there is no oracle recomputation path any more: without
// a recovery manager only the GM reliability layer copes, which is
// what stock GM without remapping would do).
type Target struct {
	Eng  *sim.Engine
	Net  *fabric.Network
	Topo *topology.Topology

	// Hosts are the GM endpoints, used to resolve NIC fault events and
	// to observe dead-peer verdicts.
	Hosts []*gm.Host

	// Recovery receives dead-peer verdicts (ReportPeerDead) and owns
	// suspicion, confirmation and epoch publication. Optional. Either
	// the centralized monitor Manager or the decentralized Gossip
	// detector — leave nil (not a typed-nil pointer) when unused.
	Recovery recovery.Detector

	// Tracer (optional) records fault and recovery events.
	Tracer *trace.Recorder
}

// Stats counts controller activity. PeersLost is the GM-side verdict
// count; PeersSuspected/PeersConfirmed are the recovery detector's
// current beliefs (zero without a recovery manager) — a host flapping
// down and up inside one detection window shows up as suspected but
// never confirmed.
type Stats struct {
	EventsApplied  int
	PeersLost      int // hosts GM declared dead at least once
	PeersSuspected int // currently suspected by the failure detector
	PeersConfirmed int // currently confirmed dead by the detector
}

// Controller executes one campaign against one cluster. All work
// happens in simulation events, so attaching a campaign never breaks
// determinism.
type Controller struct {
	tgt  Target
	camp Campaign

	mcps      map[topology.NodeID]*mcp.MCP
	deadHosts map[topology.NodeID]bool
	stats     Stats
}

// Attach schedules every campaign event on the target's engine and
// wires the dead-peer observer. Call before Engine.Run (and after
// Recovery.Start, when a recovery manager is used, so out-of-cycle
// probes have routes).
func Attach(tgt Target, c Campaign) (*Controller, error) {
	if tgt.Eng == nil || tgt.Net == nil || tgt.Topo == nil {
		return nil, fmt.Errorf("faults: target needs Eng, Net and Topo")
	}
	ctl := &Controller{
		tgt:       tgt,
		camp:      c,
		mcps:      make(map[topology.NodeID]*mcp.MCP),
		deadHosts: make(map[topology.NodeID]bool),
	}
	for _, h := range tgt.Hosts {
		ctl.mcps[h.Node()] = h.MCP()
		witness := h.Node()
		prev := h.OnPeerDead
		h.OnPeerDead = func(peer topology.NodeID, t units.Time) {
			ctl.peerDead(witness, peer)
			if prev != nil {
				prev(peer, t)
			}
		}
	}
	for _, ev := range c.sorted() {
		ev := ev
		if err := ctl.check(ev); err != nil {
			return nil, err
		}
		tgt.Eng.ScheduleAt(ev.At, func() { ctl.apply(ev) })
	}
	return ctl, nil
}

// Stats returns a snapshot of the counters, folding in the recovery
// detector's current beliefs.
func (ctl *Controller) Stats() Stats {
	s := ctl.stats
	if ctl.tgt.Recovery != nil {
		s.PeersSuspected = ctl.tgt.Recovery.Suspected()
		s.PeersConfirmed = ctl.tgt.Recovery.Confirmed()
	}
	return s
}

// DeadHosts returns how many hosts are confirmed dead: the recovery
// detector's confirmed count when a manager is attached, otherwise
// the number of hosts GM gave a dead-peer verdict against.
func (ctl *Controller) DeadHosts() int {
	if ctl.tgt.Recovery != nil {
		return ctl.tgt.Recovery.Confirmed()
	}
	return len(ctl.deadHosts)
}

// Suspected returns how many hosts the recovery detector currently
// suspects (but has not confirmed). Zero without a recovery manager:
// GM verdicts are final.
func (ctl *Controller) Suspected() int {
	if ctl.tgt.Recovery != nil {
		return ctl.tgt.Recovery.Suspected()
	}
	return 0
}

// check validates an event against the target before scheduling.
func (ctl *Controller) check(ev Event) error {
	switch ev.Kind {
	case LinkDown, LinkUp, BitErrorBurst:
		if ev.Link < 0 || ev.Link >= len(ctl.tgt.Topo.Links()) {
			return fmt.Errorf("faults: event %v names unknown link %d", ev, ev.Link)
		}
	case NICStall, NICResume, PoolExhaust, PoolRestore:
		if ctl.mcps[ev.Host] == nil {
			return fmt.Errorf("faults: event %v names host %d with no attached GM endpoint", ev, ev.Host)
		}
	}
	return nil
}

func (ctl *Controller) apply(ev Event) {
	ctl.stats.EventsApplied++
	switch ev.Kind {
	case LinkDown:
		ctl.tgt.Net.SetLinkDown(ev.Link, true)
	case LinkUp:
		ctl.tgt.Net.SetLinkDown(ev.Link, false)
	case BitErrorBurst:
		ctl.tgt.Net.SetLinkBER(ev.Link, ev.BER)
		link := ev.Link
		ctl.tgt.Eng.Schedule(ev.Duration, func() {
			ctl.tgt.Net.SetLinkBER(link, 0)
		})
	case NICStall:
		ctl.mcps[ev.Host].SetStalled(true)
	case NICResume:
		ctl.mcps[ev.Host].SetStalled(false)
	case PoolExhaust:
		ctl.mcps[ev.Host].SetPoolExhausted(true)
	case PoolRestore:
		ctl.mcps[ev.Host].SetPoolExhausted(false)
	case ScoutLoss:
		ctl.tgt.Net.SetScoutFault(ev.DropEvery, ev.DupEvery)
	}
}

// peerDead forwards a GM dead-peer verdict to the recovery detector,
// which treats it as corroborating evidence (straight to Suspected
// plus an immediate probe) but still insists on its own confirmation
// before republishing routes — GM's verdict can be wrong about a
// host that is merely slow or briefly partitioned. Detectors that
// care which host witnessed the death (the gossip detector routes
// the evidence to that host's agent) get it via PeerWitness.
func (ctl *Controller) peerDead(witness, peer topology.NodeID) {
	if !ctl.deadHosts[peer] {
		ctl.deadHosts[peer] = true
		ctl.stats.PeersLost++
	}
	if ctl.tgt.Recovery == nil {
		return
	}
	if w, ok := ctl.tgt.Recovery.(recovery.PeerWitness); ok {
		w.ReportPeerDeadFrom(witness, peer)
		return
	}
	ctl.tgt.Recovery.ReportPeerDead(peer)
}
