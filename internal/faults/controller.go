package faults

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
)

// Target is the cluster a campaign attaches to. Net/Topo/Eng are
// required; Hosts enables the recovery wiring (dead-peer tracking and
// NIC-level faults); UD+Recompute enables route recomputation.
type Target struct {
	Eng  *sim.Engine
	Net  *fabric.Network
	Topo *topology.Topology

	// Hosts are the GM endpoints, used to resolve NIC fault events and
	// to observe dead-peer verdicts.
	Hosts []*gm.Host

	// UD and Alg configure route recomputation (Recompute).
	UD  *topology.UpDown
	Alg routing.Algorithm
	// Recompute rebuilds every host's route table around the failed
	// set whenever a link fails/recovers or a peer is declared dead —
	// the mapper's reaction, compressed to an instantaneous event (the
	// remapping cost itself is not modelled here).
	Recompute bool

	// Tracer (optional) records fault and recovery events.
	Tracer *trace.Recorder
}

// Stats counts controller activity.
type Stats struct {
	EventsApplied int
	Recomputes    int
	PeersLost     int // hosts excluded after a dead-peer verdict
}

// Controller executes one campaign against one cluster. All work
// happens in simulation events, so attaching a campaign never breaks
// determinism.
type Controller struct {
	tgt  Target
	camp Campaign

	mcps      map[topology.NodeID]*mcp.MCP
	downLinks map[int]bool
	deadHosts map[topology.NodeID]bool
	stats     Stats
}

// Attach schedules every campaign event on the target's engine and
// wires the dead-peer observer. Call before Engine.Run.
func Attach(tgt Target, c Campaign) (*Controller, error) {
	if tgt.Eng == nil || tgt.Net == nil || tgt.Topo == nil {
		return nil, fmt.Errorf("faults: target needs Eng, Net and Topo")
	}
	ctl := &Controller{
		tgt:       tgt,
		camp:      c,
		mcps:      make(map[topology.NodeID]*mcp.MCP),
		downLinks: make(map[int]bool),
		deadHosts: make(map[topology.NodeID]bool),
	}
	for _, h := range tgt.Hosts {
		ctl.mcps[h.Node()] = h.MCP()
		h := h
		prev := h.OnPeerDead
		h.OnPeerDead = func(peer topology.NodeID, t units.Time) {
			ctl.peerDead(peer)
			if prev != nil {
				prev(peer, t)
			}
		}
	}
	for _, ev := range c.sorted() {
		ev := ev
		if err := ctl.check(ev); err != nil {
			return nil, err
		}
		tgt.Eng.ScheduleAt(ev.At, func() { ctl.apply(ev) })
	}
	return ctl, nil
}

// Stats returns a snapshot of the counters.
func (ctl *Controller) Stats() Stats { return ctl.stats }

// DeadHosts returns how many hosts were excluded by dead-peer
// verdicts.
func (ctl *Controller) DeadHosts() int { return len(ctl.deadHosts) }

// check validates an event against the target before scheduling.
func (ctl *Controller) check(ev Event) error {
	switch ev.Kind {
	case LinkDown, LinkUp, BitErrorBurst:
		if ev.Link < 0 || ev.Link >= len(ctl.tgt.Topo.Links()) {
			return fmt.Errorf("faults: event %v names unknown link %d", ev, ev.Link)
		}
	case NICStall, NICResume, PoolExhaust, PoolRestore:
		if ctl.mcps[ev.Host] == nil {
			return fmt.Errorf("faults: event %v names host %d with no attached GM endpoint", ev, ev.Host)
		}
	}
	return nil
}

func (ctl *Controller) apply(ev Event) {
	ctl.stats.EventsApplied++
	switch ev.Kind {
	case LinkDown:
		ctl.tgt.Net.SetLinkDown(ev.Link, true)
		ctl.downLinks[ev.Link] = true
		ctl.recompute("link-down")
	case LinkUp:
		ctl.tgt.Net.SetLinkDown(ev.Link, false)
		delete(ctl.downLinks, ev.Link)
		ctl.recompute("link-up")
	case BitErrorBurst:
		ctl.tgt.Net.SetLinkBER(ev.Link, ev.BER)
		link := ev.Link
		ctl.tgt.Eng.Schedule(ev.Duration, func() {
			ctl.tgt.Net.SetLinkBER(link, 0)
		})
	case NICStall:
		ctl.mcps[ev.Host].SetStalled(true)
	case NICResume:
		ctl.mcps[ev.Host].SetStalled(false)
	case PoolExhaust:
		ctl.mcps[ev.Host].SetPoolExhausted(true)
	case PoolRestore:
		ctl.mcps[ev.Host].SetPoolExhausted(false)
	case ScoutLoss:
		ctl.tgt.Net.SetScoutFault(ev.DropEvery, ev.DupEvery)
	}
}

// peerDead reacts to a GM dead-peer verdict: the lost host is excluded
// from future routes (both as endpoint and as in-transit buffer) and
// every table is rebuilt. Verdicts are sticky — a resumed NIC's
// sequence state is gone, so the host stays excluded until remap.
func (ctl *Controller) peerDead(peer topology.NodeID) {
	if ctl.deadHosts[peer] {
		return
	}
	ctl.deadHosts[peer] = true
	ctl.stats.PeersLost++
	ctl.recompute("peer-dead")
}

// recompute rebuilds every host's route table around the current
// failed set. With Recompute unset (or no up*/down* orientation) it
// is a no-op: packets keep following stale routes and only the GM
// reliability layer copes, which is what stock GM without remapping
// would do.
func (ctl *Controller) recompute(why string) {
	if !ctl.tgt.Recompute || ctl.tgt.UD == nil {
		return
	}
	avoid := &routing.Avoid{Links: make(map[int]bool), Hosts: make(map[topology.NodeID]bool)}
	for l := range ctl.downLinks {
		avoid.Links[l] = true
	}
	for h := range ctl.deadHosts {
		avoid.Hosts[h] = true
	}
	tbl, err := routing.BuildTableAvoiding(ctl.tgt.Topo, ctl.tgt.UD, ctl.tgt.Alg, avoid)
	if err != nil {
		return // keep the stale table rather than tear routing down
	}
	for _, h := range ctl.tgt.Hosts {
		h.SetTable(tbl)
	}
	ctl.stats.Recomputes++
	if ctl.tgt.Tracer != nil {
		ctl.tgt.Tracer.Record(trace.Event{
			At:     ctl.tgt.Eng.Now(),
			Kind:   trace.RouteRecompute,
			Detail: fmt.Sprintf("%s links=%d hosts=%d", why, len(avoid.Links), len(avoid.Hosts)),
		})
	}
}
