package faults_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gm"
	"repro/internal/mcp"
	"repro/internal/recovery"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// TestConservationProperty is the fault suite's central invariant:
// under ANY generated campaign, every tracked message is either
// delivered exactly once or reported failed to its sender — never
// duplicated, never silently lost. quick.Check turns each generated
// seed into a full campaign run; the Rand is pinned so the set of
// campaigns is reproducible run-to-run (the package default is
// time-seeded, which makes failures unrepeatable).
func TestConservationProperty(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultGenConfig(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	maxCount := 220
	if testing.Short() {
		maxCount = 40
	}
	// The invariant must hold regardless of who detects failures: the
	// centralized monitor and the decentralized gossip detector drive
	// completely different probe traffic and (in gossip mode) per-host
	// epoch installs, but delivery accounting may not notice.
	for _, det := range recovery.DetectorKinds() {
		det := det
		t.Run(string(det), func(t *testing.T) {
			cfg := &quick.Config{
				MaxCount: maxCount,
				Rand:     rand.New(rand.NewSource(7)),
			}
			prop := func(seed int64) bool {
				return checkConservation(t, topo, seed, det)
			}
			if err := quick.Check(prop, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// checkConservation runs one campaign on a fresh cluster and verifies
// the delivery accounting. It returns false (failing the property) on
// any violation, logging the campaign seed so the run is replayable.
func checkConservation(t *testing.T, topo *topology.Topology, seed int64, detector recovery.DetectorKind) bool {
	t.Helper()
	eng := sim.NewEngine()
	net := fabric.New(eng, topo, fabric.DefaultParams())
	ud := topology.BuildUpDown(topo)
	tbl, err := routing.BuildTable(topo, ud, routing.ITBRouting)
	if err != nil {
		t.Error(err)
		return false
	}
	mcfg := mcp.DefaultConfig(mcp.ITB)
	mcfg.BufferPool = true
	mcfg.RecvBuffers = 2 // tight pool: overflow drops are part of the property
	par := gm.DefaultParams()
	par.AckTimeout = 100 * units.Microsecond
	par.BackoffFactor = 2
	par.MaxAckTimeout = 1 * units.Millisecond
	par.DeadPeerTimeouts = 4
	hostIDs := topo.Hosts()
	hosts := make([]*gm.Host, 0, len(hostIDs))
	byID := make(map[topology.NodeID]*gm.Host)
	for _, h := range hostIDs {
		gh := gm.NewHost(eng, mcp.New(net, h, mcfg), tbl, par)
		hosts = append(hosts, gh)
		byID[h] = gh
	}

	horizon := 800 * units.Microsecond
	// Self-healing runs in-simulation: probes, suspicion, confirmation
	// and epoch installs are all events, not an oracle recompute.
	rcfg := recovery.DefaultConfig(4 * horizon)
	rtgt := recovery.Target{
		Eng: eng, Topo: topo, UD: ud, Alg: routing.ITBRouting,
		Base: tbl, Hosts: hosts, Monitor: 0,
	}
	var det recovery.Detector
	switch detector {
	case recovery.DetectorGossip:
		rcfg.Seed = seed
		gsp, err := recovery.NewGossip(rcfg, rtgt)
		if err != nil {
			t.Error(err)
			return false
		}
		gsp.Start()
		det = gsp
	default:
		mgr, err := recovery.NewManager(rcfg, rtgt)
		if err != nil {
			t.Error(err)
			return false
		}
		mgr.Start()
		det = mgr
	}
	camp := faults.Generate(seed, topo, faults.GenConfig{Horizon: horizon, Events: 5})
	if _, err := faults.Attach(faults.Target{
		Eng: eng, Net: net, Topo: topo,
		Hosts: hosts, Recovery: det,
	}, camp); err != nil {
		t.Error(err)
		return false
	}

	// Tracked traffic: a fixed batch of messages at seeded times, each
	// carrying its id in the payload so receivers can report delivery.
	const msgs = 24
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	delivered := make(map[uint64]int)
	acked := make(map[uint64]bool)
	failed := make(map[uint64]bool)
	for _, gh := range hosts {
		gh.OnMessage = func(_ topology.NodeID, payload []byte, _ units.Time) {
			if len(payload) < 8 {
				return
			}
			var id uint64
			for i := 0; i < 8; i++ {
				id |= uint64(payload[i]) << (8 * i)
			}
			delivered[id]++
		}
	}
	for id := uint64(0); id < msgs; id++ {
		src := hostIDs[rng.Intn(len(hostIDs))]
		dst := hostIDs[rng.Intn(len(hostIDs))]
		for dst == src {
			dst = hostIDs[rng.Intn(len(hostIDs))]
		}
		payload := make([]byte, 16+rng.Intn(1024))
		for i := 0; i < 8; i++ {
			payload[i] = byte(id >> (8 * i))
		}
		id := id
		at := units.Time(rng.Int63n(int64(horizon)))
		eng.ScheduleAt(at, func() {
			err := byID[src].SendTracked(dst, payload,
				func() { acked[id] = true },
				func() { failed[id] = true })
			if err != nil {
				// Rejected up-front (dead peer, no surviving route):
				// that IS the failure report.
				failed[id] = true
			}
		})
	}

	// Run to quiescence with an event budget: the dead-peer verdict
	// must bound the run even under permanent faults, so exhausting the
	// budget is itself a failure (a fault-induced livelock).
	steps := 0
	for eng.Step() {
		if steps++; steps > 5_000_000 {
			t.Errorf("campaign seed %d: no quiescence after %d events (t=%v)", seed, steps, eng.Now())
			return false
		}
	}

	ok := true
	for id := uint64(0); id < msgs; id++ {
		switch {
		case delivered[id] > 1:
			t.Errorf("campaign seed %d: message %d delivered %d times", seed, id, delivered[id])
			ok = false
		case acked[id] && delivered[id] != 1:
			t.Errorf("campaign seed %d: message %d acked but delivered %d times", seed, id, delivered[id])
			ok = false
		case !acked[id] && !failed[id]:
			t.Errorf("campaign seed %d: message %d silently lost (no ack, no failure report)", seed, id)
			ok = false
		}
	}
	for id := range delivered {
		if id >= msgs {
			t.Errorf("campaign seed %d: phantom message id %d delivered", seed, id)
			ok = false
		}
	}
	return ok
}
