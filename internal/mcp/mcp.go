package mcp

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/lanai"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
)

// Variant selects the firmware build.
type Variant int

const (
	// Original is stock GM-1.2pre16.
	Original Variant = iota
	// ITB is the paper's modified firmware.
	ITB
)

// String names the firmware build.
func (v Variant) String() string {
	if v == Original {
		return "original MCP"
	}
	return "ITB MCP"
}

// Config parameterises one MCP instance.
type Config struct {
	Variant Variant
	NIC     lanai.Params
	Costs   Costs
	// SendBuffers and RecvBuffers are the NIC queue depths; the
	// paper's implementation keeps the original two of each.
	SendBuffers int
	RecvBuffers int
	// BufferPool enables the paper's proposed (future work) circular
	// receive queue: when every buffer is busy an arriving packet is
	// flushed instead of blocking the network, and GM retransmits it.
	// With BufferPool set, RecvBuffers is the pool size.
	BufferPool bool
	// DisableEarlyRecv is an ablation switch: in-transit packets are
	// detected only at reception completion (store-and-forward)
	// instead of from the Early Recv event after four bytes.
	DisableEarlyRecv bool
	// ReinjectViaDispatch is an ablation switch: the re-injection is
	// programmed through a normal event-dispatch cycle instead of
	// directly from the Recv state machine (the paper's optimisation
	// "avoiding one dispatching cycle delay").
	ReinjectViaDispatch bool
	// SendChunkBytes enables the GM SDMA chunk pipeline (Figure 4's
	// "Send chunks"): the wire transmission starts once the first
	// chunk of a packet is in NIC memory instead of waiting for the
	// whole SDMA. Zero stages whole packets.
	SendChunkBytes int
	// DropStaleITB selects the stale-epoch policy at an in-transit
	// host under the recovery protocol: when set, an ITB packet whose
	// epoch is older than this firmware's installed route-table epoch
	// is flushed (its stamped sub-paths may cross links the new epoch
	// routed around; GM retransmits it on the new route). Unset, the
	// packet is forwarded anyway — optimistic, cheaper, but it can
	// probe dead links. Epoch-0 packets (pre-recovery senders) always
	// forward.
	DropStaleITB bool
}

// DefaultConfig returns the faithful configuration of the paper's
// implementation.
func DefaultConfig(v Variant) Config {
	return Config{
		Variant:     v,
		NIC:         lanai.DefaultParams(),
		Costs:       DefaultCosts(),
		SendBuffers: 2,
		RecvBuffers: 2,
	}
}

// Stats counts MCP-level activity.
type Stats struct {
	PacketsSent     uint64
	PacketsReceived uint64 // delivered up to the host
	ITBDetects      uint64 // in-transit markers recognised
	ITBForwarded    uint64 // in-transit packets re-injected
	ITBVCSegments   uint64 // re-injected segments that open with a VC lane pair
	ITBPendingHits  uint64 // re-injections that found the send DMA busy
	PoolDrops       uint64 // packets flushed by the buffer pool
	BlockedArrivals uint64 // arrivals that waited for a receive buffer
	CRCDrops        uint64 // packets flushed for failing the payload CRC
	StallDrops      uint64 // arrivals flushed while the NIC was stalled
	StaleEpochDrops uint64 // in-transit packets flushed by the stale-epoch policy
	GossipDigests   uint64 // membership digests consumed from mapping payloads
	GossipPiggybacks uint64 // membership digests consumed off in-transit data packets
}

// sendJob is a packet staged for transmission.
type sendJob struct {
	pkt    *packet.Packet
	onSent func(t units.Time) // tail left the NIC
	// tailReady is when the packet's last byte will be in NIC memory;
	// zero when the whole packet was staged before queueing.
	tailReady units.Time
}

// itbJob is a deferred in-transit re-injection.
type itbJob struct {
	pkt       *packet.Packet
	tailReady units.Time
}

// relayJob is a PDES cross-partition arrival waiting for a receive
// buffer (faithful two-buffer config only; a buffer pool drops
// instead).
type relayJob struct {
	pkt                *packet.Packet
	headerAt, tailedAt units.Time
}

// MCP is one NIC's firmware instance. It implements fabric.Endpoint.
type MCP struct {
	eng  *sim.Engine
	net  *fabric.Network
	host topology.NodeID
	cfg  Config
	nic  *lanai.NIC

	// Send side. A send buffer is occupied from SubmitSend until the
	// packet's tail leaves the NIC; the wire (send packet DMA) is a
	// single engine shared with ITB re-injections, which take
	// priority via the ITB-packet-pending path.
	sendBufsFree int
	hostQ        sim.FIFO[sendJob] // waiting for a send buffer / SDMA
	readyQ       sim.FIFO[sendJob] // in NIC SRAM, waiting for the wire
	itbQ         sim.FIFO[itbJob]  // pending re-injections (highest priority)
	wireBusy     bool

	// Receive side.
	recvBufsFree int
	waiting      sim.FIFO[*fabric.Flight] // blocked arrivals (no buffer pool)
	relayQ       sim.FIFO[relayJob]       // blocked PDES relay arrivals (no buffer pool)
	inTransit    map[*packet.Packet]bool

	// epoch is the route-table version the recovery protocol last
	// installed on this firmware (SetEpoch); the stale-ITB policy
	// compares arriving in-transit packets against it.
	epoch uint32

	// Injected fault state (campaign-driven). A stalled NIC flushes
	// every arrival and stops feeding the wire; an exhausted pool
	// behaves as if every receive buffer were busy. Both are
	// survivable: GM's reliability layer retransmits the flushed
	// packets once the fault clears (or gives the dead-peer verdict if
	// it never does).
	stalled   bool
	exhausted bool

	// OnDeliver is called when a packet has been RDMA-ed to the host.
	OnDeliver func(pkt *packet.Packet, t units.Time)
	// OnMapping is called (on the mapper host) when a mapping packet
	// addressed to this host's own mapper arrives: a self-returned
	// scout, a reply from a remote NIC, or — in gossip mode — an
	// indirect-probe request or acknowledgement for the local failure
	// detector. Other NICs leave it nil; their MCP answers probes
	// autonomously.
	OnMapping func(m packet.Mapping, t units.Time)
	// OnGossip is called with every membership digest this firmware
	// consumes: digests riding mapping payloads, and digests
	// piggybacked on data packets crossing this host in transit. Nil
	// outside gossip mode.
	OnGossip func(entries []packet.GossipEntry, t units.Time)
	// ProbeDigest, when set, supplies the membership digest the MCP
	// attaches to its autonomous probe replies — the refutation channel
	// of the gossip detector: a probed host's reply always carries its
	// own current incarnation. Nil outside gossip mode.
	ProbeDigest func() []packet.GossipEntry

	tracer *trace.Recorder
	stats  Stats

	// Queue-depth high-water gauges (nil when metrics are disabled;
	// SetMax no-ops on nil receivers, so the queueing paths update them
	// unconditionally at the cost of a nil check).
	gHostQ  *metrics.Gauge
	gReadyQ *metrics.Gauge
	gITBQ   *metrics.Gauge
	gWaitQ  *metrics.Gauge
}

// New builds the firmware for one host NIC and attaches it to the
// network.
func New(net *fabric.Network, host topology.NodeID, cfg Config) *MCP {
	if cfg.SendBuffers < 1 || cfg.RecvBuffers < 1 {
		panic("mcp: need at least one send and one receive buffer")
	}
	// Buffers live in NIC SRAM; a 4KB-MTU slot per buffer must fit in
	// the card's memory (the paper notes 2-8 MB parts, "enough to
	// minimize" overflow).
	const slot = 4096 + 64
	if cfg.NIC.SRAMBytes > 0 && (cfg.SendBuffers+cfg.RecvBuffers)*slot > cfg.NIC.SRAMBytes {
		panic(fmt.Sprintf("mcp: %d buffers exceed the NIC's %d-byte SRAM",
			cfg.SendBuffers+cfg.RecvBuffers, cfg.NIC.SRAMBytes))
	}
	m := &MCP{
		eng:          net.Engine(),
		net:          net,
		host:         host,
		cfg:          cfg,
		nic:          lanai.NewNIC(net.Engine(), cfg.NIC),
		sendBufsFree: cfg.SendBuffers,
		recvBufsFree: cfg.RecvBuffers,
		inTransit:    make(map[*packet.Packet]bool),
	}
	net.Attach(host, m)
	return m
}

// Host returns the host node this firmware serves.
func (m *MCP) Host() topology.NodeID { return m.host }

// Stats returns a snapshot of the counters.
func (m *MCP) Stats() Stats { return m.stats }

// NIC returns the underlying hardware model.
func (m *MCP) NIC() *lanai.NIC { return m.nic }

// Engine returns the event engine driving this firmware.
func (m *MCP) Engine() *sim.Engine { return m.eng }

// Config returns the firmware configuration.
func (m *MCP) Config() Config { return m.cfg }

// SetTracer attaches an event recorder (nil to detach).
func (m *MCP) SetTracer(r *trace.Recorder) { m.tracer = r }

// SetEpoch installs the route-table epoch on the firmware, as the
// recovery protocol's table distribution does host by host. Epochs
// only move forward; a late-arriving older install is ignored.
func (m *MCP) SetEpoch(epoch uint32) {
	if epoch > m.epoch {
		m.epoch = epoch
	}
}

// Epoch returns the installed route-table epoch.
func (m *MCP) Epoch() uint32 { return m.epoch }

// SetMetrics attaches a registry (nil to detach): the firmware keeps
// per-queue high-water gauges live as it runs; the counter snapshot is
// published by PublishMetrics at end of run.
func (m *MCP) SetMetrics(r *metrics.Registry) {
	pfx := fmt.Sprintf("mcp.host%d.", m.host)
	m.gHostQ = r.Gauge(pfx + "peak_hostq")
	m.gReadyQ = r.Gauge(pfx + "peak_readyq")
	m.gITBQ = r.Gauge(pfx + "peak_itbq")
	m.gWaitQ = r.Gauge(pfx + "peak_waitq")
}

// PublishMetrics dumps the firmware counters into r under
// mcp.host<N>.*. Zero counters are skipped to keep snapshots compact.
func (m *MCP) PublishMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	pfx := fmt.Sprintf("mcp.host%d.", m.host)
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"packets_sent", m.stats.PacketsSent},
		{"packets_received", m.stats.PacketsReceived},
		{"itb_detects", m.stats.ITBDetects},
		{"itb_forwarded", m.stats.ITBForwarded},
		{"itb_vc_segments", m.stats.ITBVCSegments},
		{"itb_pending_hits", m.stats.ITBPendingHits},
		{"pool_drops", m.stats.PoolDrops},
		{"blocked_arrivals", m.stats.BlockedArrivals},
		{"crc_drops", m.stats.CRCDrops},
		{"stall_drops", m.stats.StallDrops},
		{"stale_epoch_drops", m.stats.StaleEpochDrops},
		{"gossip_digests", m.stats.GossipDigests},
		{"gossip_piggybacks", m.stats.GossipPiggybacks},
	} {
		if c.v != 0 {
			r.Counter(pfx + c.name).Add(c.v)
		}
	}
}

func (m *MCP) emit(k trace.Kind, pktID uint64, detail string) {
	if m.tracer == nil {
		return
	}
	m.tracer.Record(trace.Event{At: m.eng.Now(), Kind: k, Node: m.host, Packet: pktID, Detail: detail})
}

// ---------------------------------------------------------------
// Send path: host -> SDMA -> NIC buffer -> Send state machine -> wire.

// SubmitSend queues a packet for transmission. onSent (optional) fires
// when the packet's tail has left the NIC. The route bytes must
// already be stamped in pkt.Route (GM stamps them from the mapper's
// table when the send is enqueued).
func (m *MCP) SubmitSend(pkt *packet.Packet, onSent func(t units.Time)) {
	m.net.TagPacket(pkt)
	m.emit(trace.SendQueued, pkt.ID, pkt.Type.String())
	job := sendJob{pkt: pkt, onSent: onSent}
	if m.sendBufsFree == 0 {
		m.hostQ.Push(job)
		m.gHostQ.SetMax(float64(m.hostQ.Len()))
		return
	}
	m.sendBufsFree--
	m.startSDMA(job)
}

// startSDMA moves the packet from host memory into a NIC send buffer.
// With chunking the packet becomes wire-eligible after its first
// chunk; the fabric paces the tail on the SDMA's completion.
func (m *MCP) startSDMA(job sendJob) {
	m.nic.CPU.Post(lanai.PrioDMA, m.cfg.Costs.SDMASetupCycles, func() {
		if m.cfg.SendChunkBytes > 0 {
			m.nic.HostDMAChunked(job.pkt.WireLen(), m.cfg.SendChunkBytes,
				func(firstAt, doneAt units.Time) {
					job.tailReady = doneAt
					m.eng.ScheduleAt(firstAt, func() {
						m.readyQ.Push(job)
						m.gReadyQ.SetMax(float64(m.readyQ.Len()))
						m.tryWire()
					})
				})
			return
		}
		m.nic.HostDMA(job.pkt.WireLen(), func(units.Time) {
			m.readyQ.Push(job)
			m.gReadyQ.SetMax(float64(m.readyQ.Len()))
			m.tryWire()
		})
	})
}

// SetStalled wedges (or revives) the NIC: while stalled it flushes
// every arriving packet and stops feeding the wire. Intended for fault
// campaigns; resuming re-pumps the send path.
func (m *MCP) SetStalled(stalled bool) {
	if m.stalled == stalled {
		return
	}
	m.stalled = stalled
	detail := "resume"
	if stalled {
		detail = "stall"
	}
	m.emit(trace.NICFault, 0, detail)
	if !stalled {
		m.tryWire()
	}
}

// SetPoolExhausted makes the receive side behave as if every buffer
// were busy: arrivals are flushed (buffer pool) or blocked (faithful
// two-buffer config) until the exhaustion clears.
func (m *MCP) SetPoolExhausted(exhausted bool) {
	if m.exhausted == exhausted {
		return
	}
	m.exhausted = exhausted
	detail := "pool-restore"
	if exhausted {
		detail = "pool-exhaust"
	}
	m.emit(trace.NICFault, 0, detail)
	if !exhausted {
		m.admitWaiting()
	}
}

// admitWaiting drains blocked arrivals into freed buffers after an
// exhaustion clears. Blocked fabric flights (which hold channels and
// stall the network) win over queued relay arrivals (already buffered
// at the cut).
func (m *MCP) admitWaiting() {
	for m.recvBufsFree > 0 && m.waiting.Len() > 0 {
		m.recvBufsFree--
		m.acceptFlight(m.waiting.Pop())
	}
	for m.recvBufsFree > 0 && m.relayQ.Len() > 0 {
		m.recvBufsFree--
		j := m.relayQ.Pop()
		m.relayAdmit(j.pkt, j.headerAt, j.tailedAt)
	}
}

// tryWire starts the next transmission if the wire engine is free.
// ITB re-injections always win over normal sends (the high-priority
// "ITB packet pending" path of Figure 5).
func (m *MCP) tryWire() {
	if m.wireBusy || m.stalled {
		return
	}
	if m.itbQ.Len() > 0 {
		m.wireBusy = true
		m.programReinjection(m.itbQ.Pop())
		return
	}
	if m.readyQ.Len() == 0 {
		return
	}
	job := m.readyQ.Pop()
	m.wireBusy = true
	m.nic.CPU.Post(lanai.PrioSend, m.cfg.Costs.SendSetupCycles, func() {
		m.net.Inject(job.pkt, m.host, fabric.InjectOpts{
			TailReadyAt: job.tailReady,
			OnTailOut: func(t units.Time) {
				m.stats.PacketsSent++
				m.wireBusy = false
				m.sendBufsFree++
				// A queued host send can now claim the freed buffer.
				if m.hostQ.Len() > 0 {
					m.sendBufsFree--
					m.startSDMA(m.hostQ.Pop())
				}
				if job.onSent != nil {
					job.onSent(t)
				}
				m.tryWire()
			},
		})
	})
}

// ---------------------------------------------------------------
// Receive path.

// HeaderArrived implements fabric.Endpoint.
func (m *MCP) HeaderArrived(f *fabric.Flight) {
	if m.stalled {
		// A wedged NIC drains arriving packets into nothing; GM
		// retransmits them after the stall.
		m.stats.StallDrops++
		m.emit(trace.Dropped, f.Packet().ID, "stall")
		f.Drop()
		return
	}
	if m.recvBufsFree == 0 || m.exhausted {
		if m.cfg.BufferPool {
			// The circular queue is full: flush the packet; GM's
			// reliability layer will retransmit it.
			m.stats.PoolDrops++
			f.Drop()
			return
		}
		m.stats.BlockedArrivals++
		m.waiting.Push(f)
		m.gWaitQ.SetMax(float64(m.waiting.Len()))
		return
	}
	m.recvBufsFree--
	m.acceptFlight(f)
}

// RelayArrived is the PDES entry point: a packet whose wormhole
// segment was simulated in another partition has crossed the cut and
// is, as of now, fully in this NIC's receive path. It mirrors
// HeaderArrived's admission decision (stall flush, buffer-pool drop,
// blocked arrival) without a Flight — the fabric of the owning
// partition never saw this segment. Packets flushed here die for good;
// Recycle returns pool-backed ones.
func (m *MCP) RelayArrived(pkt *packet.Packet, headerAt, tailedAt units.Time) {
	if m.stalled {
		m.stats.StallDrops++
		m.emit(trace.Dropped, pkt.ID, "stall")
		packet.Recycle(pkt)
		return
	}
	if m.recvBufsFree == 0 || m.exhausted {
		if m.cfg.BufferPool {
			m.stats.PoolDrops++
			m.emit(trace.Dropped, pkt.ID, "pool")
			packet.Recycle(pkt)
			return
		}
		m.stats.BlockedArrivals++
		m.relayQ.Push(relayJob{pkt: pkt, headerAt: headerAt, tailedAt: tailedAt})
		m.gWaitQ.SetMax(float64(m.waiting.Len() + m.relayQ.Len()))
		return
	}
	m.recvBufsFree--
	m.relayAdmit(pkt, headerAt, tailedAt)
}

// relayAdmit runs the receive pipeline for an admitted relay arrival.
// The packet is store-and-forward at the cut: header and tail are both
// here, so the ITB early-recv check (normally armed four byte-times
// into reception) is charged immediately and any re-injection paces
// its tail on "already in memory".
func (m *MCP) relayAdmit(pkt *packet.Packet, headerAt, tailedAt units.Time) {
	if m.cfg.Variant == ITB && !m.cfg.DisableEarlyRecv {
		m.nic.CPU.Post(lanai.PrioITB, m.cfg.Costs.EarlyRecvCheckCycles, func() {
			m.earlyRecv(pkt, tailedAt)
		})
	}
	m.PacketReceived(pkt, headerAt, tailedAt)
}

// acceptFlight programs the receive DMA for the arriving packet and,
// on the ITB firmware, arms the Early Recv event for when the first
// four bytes are in. The packet and completion time are captured here:
// the early-recv handler may run after a short packet has fully
// arrived, at which point the Flight object is no longer ours to read
// (the fabric recycles finished flights).
func (m *MCP) acceptFlight(f *fabric.Flight) {
	f.Accept()
	if m.cfg.Variant != ITB || m.cfg.DisableEarlyRecv {
		return
	}
	pkt, tailReady := f.Packet(), f.CompletionTime()
	fourBytes := 4 * m.net.Params().ByteTime()
	m.eng.Schedule(fourBytes, func() {
		m.nic.CPU.Post(lanai.PrioITB, m.cfg.Costs.EarlyRecvCheckCycles, func() {
			m.earlyRecv(pkt, tailReady)
		})
	})
}

// earlyRecv is the Early Recv Packet event handler: the first four
// bytes of the packet are visible, enough to see the ITB marker.
func (m *MCP) earlyRecv(pkt *packet.Packet, tailReady units.Time) {
	if !pkt.AtITBBoundary() {
		// A normal packet (or an ITB-routed packet at its final
		// destination): resume normal dispatching. The check's cost
		// has already been charged — that is the Figure 7 overhead.
		return
	}
	m.detectAndForward(pkt, tailReady)
}

// detectAndForward handles a detected in-transit packet: it pays the
// detection cost, pops the ITB header and re-injects (or raises the
// pending flag). tailReady is when the packet's last byte will be in
// NIC memory — the re-injection may start earlier (cut-through) but
// cannot stream faster than that.
func (m *MCP) detectAndForward(pkt *packet.Packet, tailReady units.Time) {
	m.stats.ITBDetects++
	m.emit(trace.ITBDetect, pkt.ID, "")
	m.inTransit[pkt] = true
	prio := lanai.PrioITB
	detect := m.cfg.Costs.ITBDetectCycles
	if m.cfg.ReinjectViaDispatch {
		// Ablation: the detection result goes back through the event
		// handler at normal priority instead of the Recv fast path.
		prio = lanai.PrioSend
		detect += m.cfg.NIC.DispatchCycles
	}
	m.nic.CPU.Post(prio, detect, func() {
		if len(pkt.Gossip) > 0 && m.OnGossip != nil {
			// A data packet crossing this host in transit carries a
			// piggybacked membership digest: consume it (the header is
			// already in SRAM at detection time) but leave it on the
			// packet, so one stamped packet seeds every ITB host on its
			// route.
			if entries, _, err := packet.ParseGossipDigest(pkt.Gossip); err == nil {
				m.stats.GossipPiggybacks++
				m.OnGossip(entries, m.eng.Now())
			}
		}
		if m.cfg.DropStaleITB && pkt.Epoch > 0 && pkt.Epoch < m.epoch {
			// Stale-epoch policy: the packet was stamped under an older
			// table than this host runs; flush it instead of forwarding
			// over sub-paths the remap may have routed around. Reception
			// still completes into the buffer, which is freed there.
			m.stats.StaleEpochDrops++
			m.emit(trace.StaleEpochDrop, pkt.ID, fmt.Sprintf("epoch=%d<%d", pkt.Epoch, m.epoch))
			m.inTransit[pkt] = false
			return
		}
		if _, err := pkt.PopITBHeader(); err != nil {
			// Corrupt in-transit header: flush the packet; reception
			// still completes into the buffer, which is freed there.
			m.inTransit[pkt] = false
			return
		}
		if pkt.AtVCBoundary() {
			// The re-injected segment selects a virtual lane at its
			// first switch: the ITB and VC mechanisms composing on one
			// route (the ablation's combined arm). The firmware itself
			// needs no lane awareness — the pair rides in the route
			// bytes it forwards untouched.
			m.stats.ITBVCSegments++
		}
		job := itbJob{pkt: pkt, tailReady: tailReady}
		if m.wireBusy {
			// Send engine busy: raise ITB packet pending; the wire
			// completion path drains itbQ first.
			m.stats.ITBPendingHits++
			m.emit(trace.ITBPending, pkt.ID, "")
			m.itbQ.Push(job)
			m.gITBQ.SetMax(float64(m.itbQ.Len()))
			return
		}
		m.wireBusy = true
		m.programReinjection(job)
	})
}

// programReinjection programs the send DMA with the in-transit packet
// (possibly while it is still being received — virtual cut-through)
// and injects it.
func (m *MCP) programReinjection(job itbJob) {
	m.emit(trace.ITBReinject, job.pkt.ID, "")
	m.nic.CPU.Post(lanai.PrioITB, m.cfg.Costs.ProgramSendDMACycles, func() {
		m.eng.Schedule(m.cfg.Costs.SendDMAStartup, func() {
			m.net.Inject(job.pkt, m.host, fabric.InjectOpts{
				TailReadyAt: job.tailReady,
				OnTailOut: func(units.Time) {
					m.stats.ITBForwarded++
					m.wireBusy = false
					// The in-transit packet has fully left: free its
					// receive buffer and re-arm a reception.
					delete(m.inTransit, job.pkt)
					m.releaseRecvBuffer()
					m.tryWire()
				},
			})
		})
	})
}

// PacketReceived implements fabric.Endpoint: the packet tail is fully
// in the NIC receive buffer.
func (m *MCP) PacketReceived(pkt *packet.Packet, headerAt, completedAt units.Time) {
	if forward, ok := m.inTransit[pkt]; ok || pkt.AtITBBoundary() {
		// An in-transit packet: its buffer is freed when the
		// re-injection's tail leaves (programReinjection), except for
		// corrupt ones (forward == false), flushed here.
		if ok && !forward {
			delete(m.inTransit, pkt)
			m.releaseRecvBuffer()
			// Stale-epoch or corrupt-header flush: the in-transit packet
			// dies in this NIC with no other live reference (early-recv
			// and the detect event have both run).
			packet.Recycle(pkt)
			return
		}
		if !ok && m.cfg.Variant == ITB && m.cfg.DisableEarlyRecv {
			// Ablation: store-and-forward detection happens only now,
			// with the whole packet already in the buffer.
			m.detectAndForward(pkt, completedAt)
		}
		return
	}
	cycles := m.cfg.Costs.RecvCompleteCycles
	if m.cfg.Variant == ITB {
		cycles += m.cfg.Costs.RecvCompleteITBExtraCycles
	}
	if pkt.Corrupt {
		// The payload CRC fails at this final destination: flush the
		// packet; GM's reliability layer will retransmit it (its ack
		// never goes out). In-transit hosts never reach this point —
		// cut-through re-injects before the tail (and its CRC) is in,
		// so corruption rides through ITB hops, exactly as on real
		// hardware.
		m.nic.CPU.Post(lanai.PrioRecv, cycles, func() {
			m.stats.CRCDrops++
			m.emit(trace.Dropped, pkt.ID, "crc")
			m.releaseRecvBuffer()
			// The flushed wire packet is dead; its sender retransmits
			// from the retained original, never from this copy.
			packet.Recycle(pkt)
		})
		return
	}
	if pkt.Type == packet.TypeMapping {
		// Mapping packets are handled inside the MCP, below GM.
		m.nic.CPU.Post(lanai.PrioRecv, cycles, func() {
			m.handleMapping(pkt)
			m.releaseRecvBuffer()
		})
		return
	}
	m.nic.CPU.Post(lanai.PrioRecv, cycles, func() {
		// RDMA the payload to host memory.
		m.nic.CPU.Post(lanai.PrioDMA, m.cfg.Costs.RDMASetupCycles, func() {
			m.nic.HostDMA(len(pkt.Payload), func(t units.Time) {
				m.stats.PacketsReceived++
				m.emit(trace.RecvToHost, pkt.ID, "")
				if m.OnDeliver != nil {
					m.OnDeliver(pkt, t)
				}
				m.releaseRecvBuffer()
			})
		})
	})
}

// handleMapping implements the MCP side of the network-mapping
// protocol: probes from a remote mapper are answered with this host's
// identity along the return route the probe carries; self-returned
// scouts and replies are handed to the local mapper, if any.
func (m *MCP) handleMapping(pkt *packet.Packet) {
	mp, err := packet.DecodeMapping(pkt.Payload)
	if err != nil {
		return // malformed scout: flush
	}
	if len(mp.Digest) > 0 && m.OnGossip != nil {
		// Any mapping payload may carry a piggybacked membership
		// digest; consume it here so every handler below sees a
		// detector already updated with the sender's view.
		m.stats.GossipDigests++
		m.OnGossip(mp.Digest, m.eng.Now())
	}
	switch {
	case mp.Kind == packet.MappingReply,
		mp.Kind == packet.MappingPingReq,
		mp.Kind == packet.MappingPingAck,
		mp.Kind == packet.MappingProbe && mp.Origin == int32(m.host):
		// Addressed to the mapper or failure-detector agent running on
		// this host. Indirect-probe relaying needs routes the firmware
		// does not have, so ping-reqs go up to the agent too; without
		// one they die here, exactly as a relay that cannot help.
		if m.OnMapping != nil {
			m.OnMapping(mp, m.eng.Now())
		}
	default:
		// A foreign probe: answer with our identity. A probe with an
		// empty return route cannot be answered (the mapper was still
		// bootstrapping its own attach port); inject anyway — the
		// fabric flushes the route-less reply at the first switch,
		// exactly as real misaddressed scouts die.
		var digest []packet.GossipEntry
		if m.ProbeDigest != nil {
			digest = m.ProbeDigest()
		}
		reply := &packet.Packet{
			Route: append([]byte(nil), mp.ReturnRoute...),
			Type:  packet.TypeMapping,
			Src:   int(m.host),
			Dst:   int(mp.Origin),
			Payload: packet.EncodeMapping(packet.Mapping{
				Kind:   packet.MappingReply,
				Nonce:  mp.Nonce,
				Origin: int32(m.host),
				Digest: digest,
			}),
		}
		m.SubmitSend(reply, nil)
	}
}

// releaseRecvBuffer re-arms a reception and admits a blocked arrival
// if one is waiting.
func (m *MCP) releaseRecvBuffer() {
	m.nic.CPU.Post(lanai.PrioRecv, m.cfg.Costs.ProgramRecvCycles, func() {
		if !m.exhausted && m.waiting.Len() > 0 {
			m.acceptFlight(m.waiting.Pop())
			return
		}
		if !m.exhausted && m.relayQ.Len() > 0 {
			j := m.relayQ.Pop()
			m.relayAdmit(j.pkt, j.headerAt, j.tailedAt)
			return
		}
		m.recvBufsFree++
	})
}

// String identifies the instance in traces.
func (m *MCP) String() string {
	return fmt.Sprintf("%s@host%d", m.cfg.Variant, m.host)
}
