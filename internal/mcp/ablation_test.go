package mcp

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/units"
)

// itbLatency measures the delivery time of one in-transit packet of
// the given size under a firmware configuration tweak.
func itbLatency(t *testing.T, size int, tweak func(*Config)) units.Time {
	t.Helper()
	cfgTweak := tweak
	r := newRigCfg(t, func(c *Config) {
		if cfgTweak != nil {
			cfgTweak(c)
		}
	})
	var gotAt units.Time
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { gotAt = tm }
	r.mcps[r.nodes.Host1].SubmitSend(r.itbPacket(t, size), nil)
	r.eng.Run()
	if gotAt == 0 {
		t.Fatal("not delivered")
	}
	return gotAt
}

func TestAblationEarlyRecvCutThrough(t *testing.T) {
	// Disabling Early Recv forces store-and-forward at the in-transit
	// host: for a 4 KB packet that adds roughly one serialisation
	// time (~25.6 us) to the path.
	fast := itbLatency(t, 4096, nil)
	slow := itbLatency(t, 4096, func(c *Config) { c.DisableEarlyRecv = true })
	diff := slow - fast
	if diff < 10*units.Microsecond {
		t.Errorf("store-and-forward only %v slower; expected ~one serialisation (25.6us)", diff)
	}
	// For a tiny packet the gap nearly vanishes (nothing to overlap).
	fastS := itbLatency(t, 8, nil)
	slowS := itbLatency(t, 8, func(c *Config) { c.DisableEarlyRecv = true })
	if d := slowS - fastS; d > 3*units.Microsecond {
		t.Errorf("tiny-packet store-and-forward penalty %v, expected small", d)
	}
}

func TestAblationReinjectViaDispatch(t *testing.T) {
	// Routing the re-injection through a dispatch cycle must cost a
	// little extra latency, and never be faster.
	fast := itbLatency(t, 256, nil)
	slow := itbLatency(t, 256, func(c *Config) { c.ReinjectViaDispatch = true })
	if slow < fast {
		t.Errorf("dispatch-cycle path faster (%v) than fast path (%v)", slow, fast)
	}
}
