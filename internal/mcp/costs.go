// Package mcp implements the Myrinet Control Program: the firmware
// that runs on the LANai processor. It reproduces the structure the
// paper describes — an event handler dispatching the SDMA, RDMA, Send
// and Recv state machines — in two variants:
//
//   - Original: stock GM-1.2pre16 behaviour.
//   - ITB: the paper's modification. A high-priority Early Recv event
//     fires when the first four bytes of a packet arrive; its handler
//     checks for the ITB marker and, for in-transit packets, programs
//     the send DMA to re-inject the packet as soon as possible
//     (virtual cut-through), or raises the "ITB packet pending" flag
//     when the send engine is busy.
//
// Every handler is charged an explicit cycle cost, so the difference
// between the two firmwares is measurable exactly the way the paper
// measures it: run the same traffic on both and subtract.
package mcp

import "repro/internal/units"

// Costs is the cycle/time budget of each MCP code path. Cycle counts
// are LANai processor cycles (15.15 ns at 66 MHz); fixed times model
// hardware engine latencies that do not scale with the clock.
//
// Calibration targets, from the paper's Section 5:
//   - the added receive-path code costs ~125 ns per packet on average
//     (EarlyRecvCheckCycles + RecvCompleteITBExtraCycles at 66 MHz);
//   - detecting an in-transit packet takes ~275 ns and programming the
//     re-injection DMA ~200 ns (the timings assumed in the authors'
//     earlier simulation studies), with the measured end-to-end cost
//     per ITB around 1.3 us once engine startup and the extra host
//     link traversals are counted.
type Costs struct {
	// EarlyRecvCheckCycles is the type check run when the first four
	// bytes of any incoming packet have arrived (ITB firmware only).
	EarlyRecvCheckCycles int
	// RecvCompleteITBExtraCycles is the extra per-packet work the ITB
	// firmware adds to the normal receive-completion path (the state
	// flag bookkeeping of Figure 5). Charged for every received
	// packet, ITB or not — this is the Figure 7 overhead.
	RecvCompleteITBExtraCycles int
	// ITBDetectCycles is the in-transit handling once the marker is
	// seen: popping the ITB tag and length, locating the rest of the
	// route.
	ITBDetectCycles int
	// ProgramSendDMACycles is the cost of programming the send DMA
	// for a re-injection.
	ProgramSendDMACycles int
	// SendDMAStartup is the send engine's latency from "programmed"
	// to first byte on the wire.
	SendDMAStartup units.Time
	// RecvCompleteCycles is the base receive-completion handling
	// (both firmwares).
	RecvCompleteCycles int
	// ProgramRecvCycles re-arms a receive buffer.
	ProgramRecvCycles int
	// SendSetupCycles prepares a normal send (route stamping is done
	// at enqueue time; this is the Send state machine's work).
	SendSetupCycles int
	// SDMASetupCycles / RDMASetupCycles program the host DMA engine.
	SDMASetupCycles int
	RDMASetupCycles int
}

// DefaultCosts returns the calibrated cost table.
func DefaultCosts() Costs {
	return Costs{
		EarlyRecvCheckCycles:       4,  // ~61 ns
		RecvCompleteITBExtraCycles: 8,  // ~121 ns on the completion path
		ITBDetectCycles:            16, // ~242 ns (+check+dispatch ~= 275 ns)
		ProgramSendDMACycles:       13, // ~197 ns
		SendDMAStartup:             680 * units.Nanosecond,
		RecvCompleteCycles:         24, // ~364 ns
		ProgramRecvCycles:          8,  // ~121 ns
		SendSetupCycles:            30, // ~455 ns
		SDMASetupCycles:            16, // ~242 ns
		RDMASetupCycles:            16, // ~242 ns
	}
}
