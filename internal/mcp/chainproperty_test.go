package mcp

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// TestITBChainProperty: on a switch chain, a route split into an
// arbitrary set of in-transit segments still delivers exactly once,
// with ITBsTaken equal to the number of splits, under random payload
// sizes — the multi-ITB invariant of the mechanism.
func TestITBChainProperty(t *testing.T) {
	f := func(splitMask uint8, sizeRaw uint16) bool {
		const switches = 6
		topo := topology.Linear(switches, 1)
		eng := sim.NewEngine()
		net := fabric.New(eng, topo, fabric.DefaultParams())
		mcps := map[topology.NodeID]*MCP{}
		for _, h := range topo.Hosts() {
			mcps[h] = New(net, h, DefaultConfig(ITB))
		}
		sws := topo.Switches()
		hosts := topo.Hosts()
		src, dst := hosts[0], hosts[len(hosts)-1]

		// Build the chain route, splitting after interior switch i
		// when bit i of splitMask is set.
		var segments [][]byte
		var cur []byte
		splits := 0
		for i := 0; i+1 < len(sws); i++ {
			port := -1
			for _, nb := range topo.Neighbors(sws[i]) {
				if nb.Node == sws[i+1] {
					port = nb.Port
					break
				}
			}
			if port < 0 {
				return false
			}
			cur = append(cur, byte(port))
			next := sws[i+1]
			// Split at interior switches only.
			if i+1 < len(sws)-1 && splitMask&(1<<uint(i)) != 0 {
				h := topo.HostsAt(next)[0]
				cur = append(cur, byte(topo.LinkAt(h, 0).PortAt(next)))
				segments = append(segments, cur)
				cur = nil
				splits++
			}
		}
		cur = append(cur, byte(topo.LinkAt(dst, 0).PortAt(sws[len(sws)-1])))
		segments = append(segments, cur)
		route, err := packet.BuildITBRoute(segments)
		if err != nil {
			return false
		}
		pkt := &packet.Packet{
			Route: route, Type: packet.TypeITB,
			Payload: make([]byte, int(sizeRaw%4096)),
		}
		delivered := 0
		taken := -1
		mcps[dst].OnDeliver = func(p *packet.Packet, _ units.Time) {
			delivered++
			taken = p.ITBsTaken
		}
		mcps[src].SubmitSend(pkt, nil)
		eng.Run()
		if delivered != 1 || taken != splits {
			return false
		}
		// Every in-transit NIC is fully recovered.
		for _, m := range mcps {
			if m.recvBufsFree != m.cfg.RecvBuffers || m.wireBusy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
