package mcp

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/units"
)

// sendLatency measures end-to-end delivery of one packet of the given
// size under a config tweak.
func sendLatency(t *testing.T, size int, tweak func(*Config)) units.Time {
	t.Helper()
	r := newRigCfg(t, tweak)
	var gotAt units.Time
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { gotAt = tm }
	r.mcps[r.nodes.Host1].SubmitSend(r.udPacket(t, r.nodes.Host1, r.nodes.Host2, size), nil)
	r.eng.Run()
	if gotAt == 0 {
		t.Fatal("not delivered")
	}
	return gotAt
}

func TestSendChunkingOverlapsSDMAAndWire(t *testing.T) {
	// 8 KB: whole-packet staging serialises SDMA (~37us) before the
	// wire (~51us); 1 KB chunks start the wire after ~5us of SDMA,
	// hiding most of the SDMA time.
	whole := sendLatency(t, 8192, nil)
	chunked := sendLatency(t, 8192, func(c *Config) { c.SendChunkBytes = 1024 })
	saved := whole - chunked
	if saved < 20*units.Microsecond {
		t.Errorf("chunking saved only %v on 8KB; expected to hide most of the ~37us SDMA", saved)
	}
}

func TestSendChunkingNeutralForSmallPackets(t *testing.T) {
	// A packet smaller than one chunk degenerates to the plain path.
	whole := sendLatency(t, 256, nil)
	chunked := sendLatency(t, 256, func(c *Config) { c.SendChunkBytes = 1024 })
	diff := chunked - whole
	if diff < 0 {
		diff = -diff
	}
	if diff > 200*units.Nanosecond {
		t.Errorf("chunking changed small-packet latency by %v", diff)
	}
}

func TestTinyChunksPayOverhead(t *testing.T) {
	// 32-byte chunks on 8KB = 256 descriptors (~31us of chaining
	// overhead): the SDMA tail becomes the bottleneck and delivery is
	// slower than with 256-byte chunks, whose overhead is negligible.
	small := sendLatency(t, 8192, func(c *Config) { c.SendChunkBytes = 32 })
	big := sendLatency(t, 8192, func(c *Config) { c.SendChunkBytes = 256 })
	if small <= big {
		t.Errorf("32B chunks (%v) not slower than 256B chunks (%v)", small, big)
	}
}

func TestChunkedWireNeverOutrunsSDMA(t *testing.T) {
	// The wire (160MB/s) is slower than the host DMA (220MB/s), but
	// with chunking the wire starts early; delivery must still never
	// precede the SDMA completion bound: startup + size at PCI rate.
	size := 16384
	lat := sendLatency(t, size, func(c *Config) { c.SendChunkBytes = 512 })
	sdmaMin := 500*units.Nanosecond + units.TransferTime(size, 220*units.MBs)
	if lat < sdmaMin {
		t.Errorf("delivery %v before the SDMA could finish (%v)", lat, sdmaMin)
	}
	// And it must beat whole-staging by roughly the SDMA time.
	whole := sendLatency(t, size, nil)
	if lat >= whole {
		t.Errorf("chunked %v not faster than whole staging %v", lat, whole)
	}
}

func TestChunkingWithITBForwarding(t *testing.T) {
	// Chunked sends compose with in-transit forwarding.
	r := newRigCfg(t, func(c *Config) { c.SendChunkBytes = 512 })
	var gotAt units.Time
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { gotAt = tm }
	r.mcps[r.nodes.Host1].SubmitSend(r.itbPacket(t, 4096), nil)
	r.eng.Run()
	if gotAt == 0 {
		t.Fatal("ITB packet not delivered with chunked sends")
	}
	if fw := r.mcps[r.nodes.InTransit].Stats().ITBForwarded; fw != 1 {
		t.Errorf("forwards = %d", fw)
	}
}
