package mcp

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// rig is a testbed network with one MCP per host.
type rig struct {
	eng   *sim.Engine
	net   *fabric.Network
	nodes topology.TestbedNodes
	mcps  map[topology.NodeID]*MCP
	tbl   *routing.Table
}

func newRig(t *testing.T, v Variant) *rig {
	t.Helper()
	if v == ITB {
		return newRigCfg(t, nil)
	}
	return newRigCfg(t, func(c *Config) { c.Variant = Original })
}

// newRigCfg builds the testbed with an ITB-variant config optionally
// mutated by tweak.
func newRigCfg(t *testing.T, tweak func(*Config)) *rig {
	t.Helper()
	eng := sim.NewEngine()
	topo, nodes := topology.Testbed()
	net := fabric.New(eng, topo, fabric.DefaultParams())
	r := &rig{eng: eng, net: net, nodes: nodes, mcps: map[topology.NodeID]*MCP{}}
	cfg := DefaultConfig(ITB)
	if tweak != nil {
		tweak(&cfg)
	}
	for _, h := range topo.Hosts() {
		r.mcps[h] = New(net, h, cfg)
	}
	ud := topology.BuildUpDown(topo)
	tbl, err := routing.BuildTable(topo, ud, routing.UpDownRouting)
	if err != nil {
		t.Fatal(err)
	}
	r.tbl = tbl
	return r
}

// udPacket builds a GM packet with the stock route between two hosts.
func (r *rig) udPacket(t *testing.T, src, dst topology.NodeID, size int) *packet.Packet {
	t.Helper()
	route, ok := r.tbl.Lookup(src, dst)
	if !ok {
		t.Fatalf("no route %d->%d", src, dst)
	}
	hdr, err := route.EncodeHeader()
	if err != nil {
		t.Fatal(err)
	}
	return &packet.Packet{
		Route: hdr, Type: packet.TypeGM, Payload: make([]byte, size),
		Src: int(src), Dst: int(dst),
	}
}

// itbPacket builds an in-transit packet h1 -> (ITB at in-transit
// host) -> h2 on the testbed: segment 1 delivers into the in-transit
// host via switch 1; segment 2 goes switch1 -> switch2 -> host2.
func (r *rig) itbPacket(t *testing.T, size int) *packet.Packet {
	t.Helper()
	topo := r.net.Topology()
	itbPort := topo.LinkAt(r.nodes.InTransit, 0).PortAt(r.nodes.Switch1)
	interPort := 0 // link 0: switch1 port 0 -> switch2 port 0
	h2Port := topo.LinkAt(r.nodes.Host2, 0).PortAt(r.nodes.Switch2)
	route, err := packet.BuildITBRoute([][]byte{
		{byte(itbPort)},
		{byte(interPort), byte(h2Port)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &packet.Packet{
		Route: route, Type: packet.TypeITB, Payload: make([]byte, size),
		Src: int(r.nodes.Host1), Dst: int(r.nodes.Host2),
	}
}

func TestSendReceiveThroughMCP(t *testing.T) {
	r := newRig(t, Original)
	var gotPkt *packet.Packet
	var gotAt units.Time
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) {
		gotPkt, gotAt = p, tm
	}
	var sentAt units.Time
	pkt := r.udPacket(t, r.nodes.Host1, r.nodes.Host2, 256)
	r.mcps[r.nodes.Host1].SubmitSend(pkt, func(tm units.Time) { sentAt = tm })
	r.eng.Run()
	if gotPkt == nil {
		t.Fatal("packet not delivered")
	}
	if len(gotPkt.Payload) != 256 {
		t.Errorf("payload = %d bytes", len(gotPkt.Payload))
	}
	if sentAt == 0 {
		t.Error("onSent never fired")
	}
	// End-to-end includes SDMA, wire, RDMA: must exceed the bare
	// fabric latency and stay in the microsecond regime.
	if gotAt < 2*units.Microsecond || gotAt > 50*units.Microsecond {
		t.Errorf("delivery at %v, expected a few microseconds", gotAt)
	}
	s1, s2 := r.mcps[r.nodes.Host1].Stats(), r.mcps[r.nodes.Host2].Stats()
	if s1.PacketsSent != 1 || s2.PacketsReceived != 1 {
		t.Errorf("stats: sent=%d received=%d", s1.PacketsSent, s2.PacketsReceived)
	}
}

func TestManyPacketsInOrder(t *testing.T) {
	r := newRig(t, Original)
	var got []uint32
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) {
		got = append(got, p.Seq)
	}
	const n = 10
	for i := 0; i < n; i++ {
		pkt := r.udPacket(t, r.nodes.Host1, r.nodes.Host2, 512)
		pkt.Seq = uint32(i)
		r.mcps[r.nodes.Host1].SubmitSend(pkt, nil)
	}
	r.eng.Run()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, s := range got {
		if s != uint32(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestITBForwarding(t *testing.T) {
	r := newRig(t, ITB)
	var gotAt units.Time
	var got *packet.Packet
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { got, gotAt = p, tm }
	r.mcps[r.nodes.Host1].SubmitSend(r.itbPacket(t, 512), nil)
	r.eng.Run()
	if got == nil {
		t.Fatal("ITB packet not delivered")
	}
	if got.ITBsTaken != 1 {
		t.Errorf("ITBsTaken = %d, want 1", got.ITBsTaken)
	}
	itb := r.mcps[r.nodes.InTransit].Stats()
	if itb.ITBForwarded != 1 {
		t.Errorf("in-transit host forwarded %d, want 1", itb.ITBForwarded)
	}
	if itb.PacketsReceived != 0 {
		t.Errorf("in-transit host delivered %d packets to its own host, want 0", itb.PacketsReceived)
	}
	if gotAt == 0 {
		t.Error("no delivery time")
	}
	// The in-transit NIC must have all buffers free again.
	if free := r.mcps[r.nodes.InTransit].recvBufsFree; free != 2 {
		t.Errorf("in-transit recv buffers free = %d, want 2", free)
	}
	if r.mcps[r.nodes.InTransit].wireBusy {
		t.Error("in-transit wire still busy")
	}
}

func TestITBCutThroughBeatsStoreAndForward(t *testing.T) {
	// For a long packet, re-injection starts while reception is still
	// in progress, so routing via the in-transit host must cost only
	// the ITB handling overhead (~1-2us), not an extra full
	// serialisation of the packet (~25.6us for 4KB).
	size := 4096
	lat := func(mk func(*rig) *packet.Packet) units.Time {
		r := newRig(t, ITB)
		var gotAt units.Time
		r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { gotAt = tm }
		r.mcps[r.nodes.Host1].SubmitSend(mk(r), nil)
		r.eng.Run()
		if gotAt == 0 {
			t.Fatal("not delivered")
		}
		return gotAt
	}
	direct := lat(func(r *rig) *packet.Packet { return r.udPacket(t, r.nodes.Host1, r.nodes.Host2, size) })
	viaITB := lat(func(r *rig) *packet.Packet { return r.itbPacket(t, size) })
	diff := viaITB - direct
	if diff <= 0 {
		t.Fatalf("ITB path (%v) not slower than direct (%v)", viaITB, direct)
	}
	serialise := units.Time(size) * fabric.DefaultParams().ByteTime() // ~25.6us
	if diff > serialise/2 {
		t.Errorf("ITB detour cost %v suggests store-and-forward (serialisation %v)", diff, serialise)
	}
}

func TestITBPendingWhenSendBusy(t *testing.T) {
	r := newRig(t, ITB)
	// Make the in-transit host's send engine busy with a large local
	// send just before the ITB packet arrives.
	busy := r.udPacket(t, r.nodes.InTransit, r.nodes.Host2, 16384)
	r.mcps[r.nodes.InTransit].SubmitSend(busy, nil)
	delivered := 0
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { delivered++ }
	// Give the local send a head start past its SDMA (~75us for 16KB
	// at 220MB/s) so its wire transmission (~102us) is in progress
	// when the in-transit packet shows up.
	r.eng.RunFor(90 * units.Microsecond)
	r.mcps[r.nodes.Host1].SubmitSend(r.itbPacket(t, 128), nil)
	r.eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d packets, want 2", delivered)
	}
	itb := r.mcps[r.nodes.InTransit].Stats()
	if itb.ITBPendingHits != 1 {
		t.Errorf("ITBPendingHits = %d, want 1 (send engine should have been busy)", itb.ITBPendingHits)
	}
	if itb.ITBForwarded != 1 {
		t.Errorf("ITBForwarded = %d, want 1", itb.ITBForwarded)
	}
}

func TestFig7OverheadOriginalVsITB(t *testing.T) {
	// The same normal packet on both firmwares: the ITB build must be
	// slower by roughly the paper's ~125 ns (and never more than
	// 300 ns).
	latency := func(v Variant) units.Time {
		r := newRig(t, v)
		var gotAt units.Time
		r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { gotAt = tm }
		r.mcps[r.nodes.Host1].SubmitSend(r.udPacket(t, r.nodes.Host1, r.nodes.Host2, 1024), nil)
		r.eng.Run()
		if gotAt == 0 {
			t.Fatal("not delivered")
		}
		return gotAt
	}
	orig := latency(Original)
	itb := latency(ITB)
	diff := itb - orig
	if diff <= 0 {
		t.Fatalf("ITB firmware faster than original (diff %v)", diff)
	}
	if diff < 50*units.Nanosecond || diff > 300*units.Nanosecond {
		t.Errorf("per-packet code overhead = %v, want ~125ns (50-300ns)", diff)
	}
}

func TestITBFirmwareCPUCost(t *testing.T) {
	// The ITB build spends more LANai CPU per received packet (the
	// early-recv check plus the extra receive-path cycles), but the
	// processor stays far from saturated — the paper's argument that
	// the overhead "does not restrict the potential benefits".
	busy := func(v Variant) units.Time {
		r := newRig(t, v)
		for i := 0; i < 20; i++ {
			r.mcps[r.nodes.Host1].SubmitSend(r.udPacket(t, r.nodes.Host1, r.nodes.Host2, 1024), nil)
		}
		r.eng.Run()
		return r.mcps[r.nodes.Host2].NIC().CPU.BusyTime
	}
	orig := busy(Original)
	itb := busy(ITB)
	if itb <= orig {
		t.Errorf("ITB firmware CPU time %v not above original %v", itb, orig)
	}
	// 20 packets x ~(4+2 early + 8 extra) cycles ~= 4.2us extra.
	extra := itb - orig
	if extra > 10*units.Microsecond {
		t.Errorf("ITB firmware CPU overhead %v implausibly large", extra)
	}
}

func TestBlockingModeQueuesArrivals(t *testing.T) {
	r := newRig(t, Original)
	// Flood host2 with more packets than it has receive buffers while
	// its host DMA is slow to drain. All must eventually arrive.
	delivered := 0
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { delivered++ }
	const n = 8
	for i := 0; i < n; i++ {
		r.mcps[r.nodes.Host1].SubmitSend(r.udPacket(t, r.nodes.Host1, r.nodes.Host2, 4096), nil)
		r.mcps[r.nodes.InTransit].SubmitSend(r.udPacket(t, r.nodes.InTransit, r.nodes.Host2, 4096), nil)
	}
	r.eng.Run()
	if delivered != 2*n {
		t.Fatalf("delivered %d, want %d", delivered, 2*n)
	}
	if drops := r.net.Stats().Dropped; drops != 0 {
		t.Errorf("blocking mode dropped %d packets", drops)
	}
}

func TestBufferPoolDropsWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	topo, nodes := topology.Testbed()
	net := fabric.New(eng, topo, fabric.DefaultParams())
	cfg := DefaultConfig(ITB)
	cfg.BufferPool = true
	cfg.RecvBuffers = 1
	mcps := map[topology.NodeID]*MCP{}
	for _, h := range topo.Hosts() {
		mcps[h] = New(net, h, cfg)
	}
	ud := topology.BuildUpDown(topo)
	tbl, err := routing.BuildTable(topo, ud, routing.UpDownRouting)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	mcps[nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { delivered++ }
	mk := func(src topology.NodeID) *packet.Packet {
		route, _ := tbl.Lookup(src, nodes.Host2)
		hdr, _ := route.EncodeHeader()
		return &packet.Packet{Route: hdr, Type: packet.TypeGM, Payload: make([]byte, 8192)}
	}
	// Two senders, one receive buffer: at least one packet is flushed.
	mcps[nodes.Host1].SubmitSend(mk(nodes.Host1), nil)
	mcps[nodes.InTransit].SubmitSend(mk(nodes.InTransit), nil)
	eng.Run()
	drops := mcps[nodes.Host2].Stats().PoolDrops
	if drops == 0 {
		t.Error("buffer pool never dropped despite overflow")
	}
	if delivered+int(drops) != 2 {
		t.Errorf("delivered %d + dropped %d != 2", delivered, drops)
	}
}

func TestCorruptITBHeaderFlushed(t *testing.T) {
	r := newRig(t, ITB)
	topo := r.net.Topology()
	itbPort := topo.LinkAt(r.nodes.InTransit, 0).PortAt(r.nodes.Switch1)
	// Declared remaining length (9) disagrees with the actual route.
	route := []byte{byte(itbPort), packet.ITBTag, 9, 0, 2}
	pkt := &packet.Packet{Route: route, Type: packet.TypeITB, Payload: make([]byte, 64)}
	delivered := 0
	for _, m := range r.mcps {
		m.OnDeliver = func(p *packet.Packet, tm units.Time) { delivered++ }
	}
	r.mcps[r.nodes.Host1].SubmitSend(pkt, nil)
	r.eng.Run()
	if delivered != 0 {
		t.Errorf("corrupt in-transit packet was delivered %d times", delivered)
	}
	// The in-transit NIC must recover its buffer.
	if free := r.mcps[r.nodes.InTransit].recvBufsFree; free != 2 {
		t.Errorf("recv buffers free = %d, want 2", free)
	}
	// And still forward a good packet afterwards.
	got := false
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, tm units.Time) { got = true }
	r.mcps[r.nodes.Host1].SubmitSend(r.itbPacket(t, 64), nil)
	r.eng.Run()
	if !got {
		t.Error("NIC did not recover after corrupt packet")
	}
}

func TestVariantAndConfigStrings(t *testing.T) {
	if Original.String() != "original MCP" || ITB.String() != "ITB MCP" {
		t.Error("Variant strings")
	}
	r := newRig(t, ITB)
	s := r.mcps[r.nodes.Host1].String()
	if s == "" {
		t.Error("empty MCP string")
	}
	if r.mcps[r.nodes.Host1].Host() != r.nodes.Host1 {
		t.Error("Host() wrong")
	}
	if r.mcps[r.nodes.Host1].Config().Variant != ITB {
		t.Error("Config() wrong")
	}
	if r.mcps[r.nodes.Host1].NIC() == nil {
		t.Error("NIC() nil")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	eng := sim.NewEngine()
	topo, nodes := topology.Testbed()
	net := fabric.New(eng, topo, fabric.DefaultParams())
	cfg := DefaultConfig(Original)
	cfg.RecvBuffers = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(net, nodes.Host1, cfg)
}

func TestSRAMBudgetEnforced(t *testing.T) {
	eng := sim.NewEngine()
	topo, nodes := topology.Testbed()
	net := fabric.New(eng, topo, fabric.DefaultParams())
	cfg := DefaultConfig(ITB)
	cfg.BufferPool = true
	cfg.RecvBuffers = 1 << 20 // absurd: cannot fit in 2 MB of SRAM
	defer func() {
		if recover() == nil {
			t.Error("SRAM-exceeding buffer pool accepted")
		}
	}()
	New(net, nodes.Host1, cfg)
}
