package mcp

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/units"
)

// TestMappingProbeAnsweredByMCP exercises the firmware's autonomous
// reply to a foreign mapping probe.
func TestMappingProbeAnsweredByMCP(t *testing.T) {
	r := newRig(t, ITB)
	// Probe from host1 to host2 with a valid return route.
	fwd, _ := r.tbl.Lookup(r.nodes.Host1, r.nodes.Host2)
	back, _ := r.tbl.Lookup(r.nodes.Host2, r.nodes.Host1)
	fwdHdr, err := fwd.EncodeHeader()
	if err != nil {
		t.Fatal(err)
	}
	backHdr, err := back.EncodeHeader()
	if err != nil {
		t.Fatal(err)
	}
	var got packet.Mapping
	answered := false
	r.mcps[r.nodes.Host1].OnMapping = func(m packet.Mapping, _ units.Time) {
		got = m
		answered = true
	}
	probe := &packet.Packet{
		Route: fwdHdr,
		Type:  packet.TypeMapping,
		Src:   int(r.nodes.Host1),
		Payload: packet.EncodeMapping(packet.Mapping{
			Kind:        packet.MappingProbe,
			Nonce:       77,
			Origin:      int32(r.nodes.Host1),
			ReturnRoute: backHdr,
		}),
	}
	r.mcps[r.nodes.Host1].SubmitSend(probe, nil)
	r.eng.Run()
	if !answered {
		t.Fatal("no reply reached the mapper")
	}
	if got.Kind != packet.MappingReply || got.Nonce != 77 || got.Origin != int32(r.nodes.Host2) {
		t.Errorf("reply = %+v", got)
	}
}

// TestMappingMalformedFlushed: a garbage mapping payload is flushed
// without a reply and without wedging the NIC.
func TestMappingMalformedFlushed(t *testing.T) {
	r := newRig(t, ITB)
	fwd, _ := r.tbl.Lookup(r.nodes.Host1, r.nodes.Host2)
	hdr, _ := fwd.EncodeHeader()
	bad := &packet.Packet{
		Route:   hdr,
		Type:    packet.TypeMapping,
		Payload: []byte{1, 2}, // too short to decode
	}
	r.mcps[r.nodes.Host1].SubmitSend(bad, nil)
	r.eng.Run()
	if free := r.mcps[r.nodes.Host2].recvBufsFree; free != 2 {
		t.Errorf("recv buffers leaked: %d free, want 2", free)
	}
}

// TestMappingProbeWithoutReturnRouteDies: the reply of a bootstrap
// probe (empty return route) is flushed at the first switch, and the
// replying NIC recovers.
func TestMappingProbeWithoutReturnRouteDies(t *testing.T) {
	r := newRig(t, ITB)
	fwd, _ := r.tbl.Lookup(r.nodes.Host1, r.nodes.Host2)
	hdr, _ := fwd.EncodeHeader()
	probe := &packet.Packet{
		Route: hdr,
		Type:  packet.TypeMapping,
		Src:   int(r.nodes.Host1),
		Payload: packet.EncodeMapping(packet.Mapping{
			Kind:   packet.MappingProbe,
			Nonce:  1,
			Origin: int32(r.nodes.Host1),
		}),
	}
	got := false
	r.mcps[r.nodes.Host1].OnMapping = func(packet.Mapping, units.Time) { got = true }
	r.mcps[r.nodes.Host1].SubmitSend(probe, nil)
	r.eng.Run()
	if got {
		t.Error("route-less reply somehow reached the mapper")
	}
	if mis := r.net.Stats().Misrouted; mis != 1 {
		t.Errorf("misrouted = %d, want 1 (the dying reply)", mis)
	}
}

// TestBlockedITBArrivalStillForwards: an in-transit packet that had to
// wait for a receive buffer is still detected and forwarded once
// admitted.
func TestBlockedITBArrivalStillForwards(t *testing.T) {
	r := newRigCfg(t, func(c *Config) { c.RecvBuffers = 1 })
	// Occupy the in-transit host's only buffer with a slow local
	// reception: host2 sends it a large packet first.
	toITB, _ := r.tbl.Lookup(r.nodes.Host2, r.nodes.InTransit)
	hdr, _ := toITB.EncodeHeader()
	big := &packet.Packet{Route: hdr, Type: packet.TypeGM, Payload: make([]byte, 16384)}
	r.mcps[r.nodes.Host2].SubmitSend(big, nil)
	// Let the reception get underway, then send the ITB packet.
	r.eng.RunFor(80 * units.Microsecond)
	delivered := false
	r.mcps[r.nodes.Host2].OnDeliver = func(*packet.Packet, units.Time) { delivered = true }
	r.mcps[r.nodes.Host1].SubmitSend(r.itbPacket(t, 128), nil)
	r.eng.Run()
	if !delivered {
		t.Fatal("blocked in-transit packet never forwarded")
	}
	st := r.mcps[r.nodes.InTransit].Stats()
	if st.ITBForwarded != 1 {
		t.Errorf("forwarded = %d", st.ITBForwarded)
	}
	if st.BlockedArrivals == 0 {
		t.Error("arrival was never blocked; test did not exercise the queue")
	}
}

// TestTracerAccessors covers the tracing plumbing at the MCP level.
func TestTracerAccessors(t *testing.T) {
	r := newRig(t, ITB)
	rec := trace.NewRecorder(0)
	m := r.mcps[r.nodes.Host1]
	m.SetTracer(rec)
	if m.Engine() != r.eng {
		t.Error("Engine() mismatch")
	}
	m.SubmitSend(r.udPacket(t, r.nodes.Host1, r.nodes.Host2, 64), nil)
	r.eng.Run()
	if len(rec.OfKind(trace.SendQueued)) != 1 {
		t.Error("no send-queued event recorded")
	}
}
