package mcp

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/units"
)

// staleRig builds the testbed, installs epoch on the in-transit
// host's firmware, and sends one ITB packet stamped with pktEpoch
// from host 1. It reports whether host 2 received it.
func staleRun(t *testing.T, dropStale bool, hostEpoch, pktEpoch uint32) (*rig, bool) {
	t.Helper()
	var r *rig
	if dropStale {
		r = newRigCfg(t, func(c *Config) { c.DropStaleITB = true })
	} else {
		r = newRig(t, ITB)
	}
	r.mcps[r.nodes.InTransit].SetEpoch(hostEpoch)
	delivered := false
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, _ units.Time) { delivered = true }
	pkt := r.itbPacket(t, 256)
	pkt.Epoch = pktEpoch
	r.mcps[r.nodes.Host1].SubmitSend(pkt, nil)
	r.eng.Run()
	return r, delivered
}

func TestStaleEpochITBPolicy(t *testing.T) {
	cases := []struct {
		name                string
		dropStale           bool
		hostEpoch, pktEpoch uint32
		wantDeliver         bool
		wantStaleDrops      uint64
	}{
		{"drop policy flushes stale", true, 2, 1, false, 1},
		{"drop policy forwards current", true, 2, 2, true, 0},
		{"drop policy forwards newer", true, 2, 3, true, 0},
		{"drop policy forwards epoch-0 senders", true, 2, 0, true, 0},
		{"forward policy forwards stale", false, 2, 1, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, delivered := staleRun(t, tc.dropStale, tc.hostEpoch, tc.pktEpoch)
			if delivered != tc.wantDeliver {
				t.Errorf("delivered = %v, want %v", delivered, tc.wantDeliver)
			}
			s := r.mcps[r.nodes.InTransit].Stats()
			if s.StaleEpochDrops != tc.wantStaleDrops {
				t.Errorf("StaleEpochDrops = %d, want %d", s.StaleEpochDrops, tc.wantStaleDrops)
			}
			if s.ITBDetects != 1 {
				t.Errorf("ITBDetects = %d, want 1", s.ITBDetects)
			}
			if fwd := s.ITBForwarded == 1; fwd != tc.wantDeliver {
				t.Errorf("ITBForwarded = %d, delivered = %v", s.ITBForwarded, delivered)
			}
		})
	}
}

// TestStaleEpochDropFreesBuffer checks that a flushed stale packet
// releases its receive buffer: a later in-transit packet must still
// find one.
func TestStaleEpochDropFreesBuffer(t *testing.T) {
	r, delivered := staleRun(t, true, 5, 1)
	if delivered {
		t.Fatal("stale packet delivered")
	}
	delivered2 := false
	r.mcps[r.nodes.Host2].OnDeliver = func(p *packet.Packet, _ units.Time) { delivered2 = true }
	fresh := r.itbPacket(t, 256)
	fresh.Epoch = 5
	r.mcps[r.nodes.Host1].SubmitSend(fresh, nil)
	r.eng.Run()
	if !delivered2 {
		t.Fatal("fresh packet not forwarded after a stale drop")
	}
}

// TestSetEpochMonotonic pins that late-arriving older installs are
// ignored.
func TestSetEpochMonotonic(t *testing.T) {
	r := newRig(t, ITB)
	m := r.mcps[r.nodes.InTransit]
	m.SetEpoch(4)
	m.SetEpoch(2)
	if got := m.Epoch(); got != 4 {
		t.Fatalf("Epoch = %d after SetEpoch(4); SetEpoch(2), want 4", got)
	}
}
