package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*units.Nanosecond, func() { got = append(got, 3) })
	e.Schedule(10*units.Nanosecond, func() { got = append(got, 1) })
	e.Schedule(20*units.Nanosecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("fired order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30*units.Nanosecond {
		t.Errorf("Now = %v, want 30ns", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d, want 3", e.Fired())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*units.Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of order at %d: got %d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ticks []units.Time
	var tick func()
	n := 0
	tick = func() {
		ticks = append(ticks, e.Now())
		n++
		if n < 5 {
			e.Schedule(units.Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		want := units.Time(i) * units.Microsecond
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestZeroDelayRunsAfterCurrentInstantQueue(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(0, func() {
		got = append(got, "a")
		e.Schedule(0, func() { got = append(got, "c") })
	})
	e.Schedule(0, func() { got = append(got, "b") })
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(units.Nanosecond, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Live(ev) {
		t.Error("Live = true after Cancel")
	}
	// Cancelling again, or cancelling the zero handle, must not panic.
	e.Cancel(ev)
	e.Cancel(NoEvent)
}

func TestEventHandleGoesStaleAfterFire(t *testing.T) {
	e := NewEngine()
	count := 0
	first := e.Schedule(units.Nanosecond, func() { count++ })
	if at, ok := e.EventTime(first); !ok || at != units.Nanosecond {
		t.Errorf("EventTime = %v,%v, want 1ns,true", at, ok)
	}
	e.Run()
	// The slot behind `first` is free now; the next Schedule reuses it.
	second := e.Schedule(units.Nanosecond, func() { count++ })
	// Cancelling the stale handle must not kill the new event.
	e.Cancel(first)
	if e.Live(first) {
		t.Error("stale handle reports live")
	}
	if !e.Live(second) {
		t.Error("cancelling a stale handle cancelled the reused slot")
	}
	e.Run()
	if count != 2 {
		t.Errorf("fired %d events, want 2", count)
	}
}

func TestScheduleArg(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(v any) { got = append(got, v.(int)) }
	e.ScheduleArg(2*units.Nanosecond, record, 2)
	e.ScheduleArg(units.Nanosecond, record, 1)
	ev := e.ScheduleArgAt(3*units.Nanosecond, record, 3)
	e.Cancel(ev)
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v, want [1 2]", got)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []units.Time
	for _, d := range []units.Time{1, 2, 3, 4, 5} {
		d := d
		e.Schedule(d*units.Microsecond, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(3 * units.Microsecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*units.Microsecond {
		t.Errorf("Now = %v, want 3us", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	// Resume to the end.
	e.Run()
	if len(fired) != 5 {
		t.Errorf("after Run fired %d, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(7 * units.Microsecond)
	if e.Now() != 7*units.Microsecond {
		t.Errorf("Now = %v, want 7us", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine()
	e.RunFor(2 * units.Microsecond)
	e.RunFor(3 * units.Microsecond)
	if e.Now() != 5*units.Microsecond {
		t.Errorf("Now = %v, want 5us", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(units.Time(i)*units.Nanosecond, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Errorf("fired %d events before stop, want 4", count)
	}
	e.Run() // resumes
	if count != 10 {
		t.Errorf("fired %d total, want 10", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5*units.Nanosecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.ScheduleAt(units.Nanosecond, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on nil fn")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventAt(); ok {
		t.Error("NextEventAt on empty queue reported ok")
	}
	ev := e.Schedule(9*units.Nanosecond, func() {})
	if at, ok := e.NextEventAt(); !ok || at != 9*units.Nanosecond {
		t.Errorf("NextEventAt = %v,%v", at, ok)
	}
	e.Cancel(ev)
	if _, ok := e.NextEventAt(); ok {
		t.Error("NextEventAt saw cancelled event")
	}
}

// Property: however events are scheduled, they fire in nondecreasing
// time order and same-time events fire in scheduling order.
func TestFiringOrderProperty(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		e := NewEngine()
		type rec struct {
			at  units.Time
			seq int
		}
		var fired []rec
		for i, b := range raw {
			at := units.Time(b%16) * units.Nanosecond
			i := i
			e.Schedule(at, func() { fired = append(fired, rec{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		ordered := sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
		return ordered
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two engines fed the same schedule fire identically.
func TestDeterminismProperty(t *testing.T) {
	run := func(seed int64) []units.Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []units.Time
		var add func(depth int)
		add = func(depth int) {
			fired = append(fired, e.Now())
			if depth < 3 {
				e.Schedule(units.Time(rng.Intn(100))*units.Nanosecond, func() { add(depth + 1) })
			}
		}
		for i := 0; i < 20; i++ {
			e.Schedule(units.Time(rng.Intn(50))*units.Nanosecond, func() { add(0) })
		}
		e.Run()
		return fired
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
