// Conservative parallel discrete-event simulation (PDES).
//
// A Coordinator owns one Engine per logical process (partition) and
// advances them in lock-step time windows. The window width is the
// coordinator's lookahead: the minimum simulated time a cross-partition
// interaction needs to take effect (for the fabric, the minimum
// cross-partition link fly time). Within a window [t, t+L] every
// partition runs independently — possibly on parallel lanes — because
// no partition can affect another sooner than L in the future.
//
// Cross-partition interactions travel as timestamped mail: a partition
// executing an event calls Partition.Send, which stages a callback for
// the destination partition at now+delay with delay >= lookahead
// (violations panic — they would break the conservative guarantee).
// Mail is applied at window boundaries, sorted by (time, source
// partition, per-source sequence), so the schedule order inside every
// destination engine — and therefore the entire simulation output — is
// byte-identical for any lane count.
//
// Termination uses Engine.LiveCount (exact live events, excluding
// cancelled-but-undrained heap residue): the system is quiescent when
// every partition's live count is zero and no mail is staged.
package sim

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync/atomic"

	"repro/internal/units"
)

// mail is one staged cross-partition callback.
type mail struct {
	at  units.Time
	src int32
	dst int32
	seq uint64 // per-source send counter: total order with (at, src)
	fn  func(any)
	arg any
}

// Partition is one logical process: an Engine plus an outbox for
// cross-partition mail. During Coordinator.Run a partition's engine and
// outbox are touched only by the lane currently running it, so Send
// needs no locking.
type Partition struct {
	c   *Coordinator
	id  int32
	eng *Engine
	out []mail
	seq uint64
}

// Engine returns the partition's private event engine. Callers seed
// initial events here before Coordinator.Run and may inspect it between
// runs; touching it while Run is executing is a data race.
func (p *Partition) Engine() *Engine { return p.eng }

// ID returns the partition's index within the coordinator.
func (p *Partition) ID() int { return int(p.id) }

// Send stages fn(arg) to run in partition dst at now+delay. The delay
// must be at least the coordinator's lookahead; anything shorter could
// land inside the window another lane is concurrently executing, so it
// panics rather than silently corrupt the timeline.
func (p *Partition) Send(dst int, delay units.Time, fn func(any), arg any) {
	if delay < p.c.lookahead {
		panic(fmt.Sprintf("sim: cross-partition send delay %v below lookahead %v (partition %d -> %d)",
			delay, p.c.lookahead, p.id, dst))
	}
	if dst < 0 || dst >= len(p.c.parts) {
		panic(fmt.Sprintf("sim: send to unknown partition %d of %d", dst, len(p.c.parts)))
	}
	if fn == nil {
		panic("sim: nil mail function")
	}
	p.out = append(p.out, mail{
		at:  p.eng.Now() + delay,
		src: p.id,
		dst: int32(dst),
		seq: p.seq,
		fn:  fn,
		arg: arg,
	})
	p.seq++
}

// laneResult reports one lane finishing a window, carrying a captured
// panic (nil if the lane completed cleanly).
type laneResult struct {
	part  int32
	panic any
	stack []byte
}

// Coordinator synchronizes a set of partition engines with a
// conservative time-window barrier.
type Coordinator struct {
	parts     []*Partition
	lookahead units.Time
	lanes     int

	staged []mail // flush scratch, reused between windows

	// Persistent lane workers (started lazily when lanes > 1).
	cursor  atomic.Int32
	windowT units.Time
	begin   []chan struct{}
	results chan laneResult
	started bool
	closed  bool
}

// NewCoordinator creates n partitions sharing lookahead L, executed on
// up to lanes parallel lanes (clamped to [1, n]). The lookahead must be
// positive: a zero window can never make progress.
func NewCoordinator(n int, lookahead units.Time, lanes int) *Coordinator {
	if n < 1 {
		panic(fmt.Sprintf("sim: coordinator needs >= 1 partition, got %d", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	if lanes < 1 {
		lanes = 1
	}
	if lanes > n {
		lanes = n
	}
	c := &Coordinator{lookahead: lookahead, lanes: lanes}
	c.parts = make([]*Partition, n)
	for i := range c.parts {
		c.parts[i] = &Partition{c: c, id: int32(i), eng: NewEngine()}
	}
	return c
}

// Partitions returns the number of logical processes.
func (c *Coordinator) Partitions() int { return len(c.parts) }

// Lanes returns the number of execution lanes.
func (c *Coordinator) Lanes() int { return c.lanes }

// Lookahead returns the conservative window width.
func (c *Coordinator) Lookahead() units.Time { return c.lookahead }

// Partition returns logical process i.
func (c *Coordinator) Partition(i int) *Partition { return c.parts[i] }

// Quiescent reports whether no live event exists anywhere: every
// partition engine is drained (LiveCount, not Pending — cancelled
// residue must not keep the simulation alive) and no mail is staged.
func (c *Coordinator) Quiescent() bool {
	for _, p := range c.parts {
		if p.eng.LiveCount() != 0 || len(p.out) != 0 {
			return false
		}
	}
	return true
}

// flush moves every staged mail into its destination engine. Mail is
// sorted by (time, source partition, per-source sequence) first, so the
// destination engines' internal schedule order is independent of lane
// interleaving. All staged mail is timestamped at or after every
// engine's clock (Send enforces delay >= lookahead >= window width), so
// ScheduleArgAt cannot be asked to schedule in the past.
func (c *Coordinator) flush() {
	c.staged = c.staged[:0]
	for _, p := range c.parts {
		c.staged = append(c.staged, p.out...)
		p.out = p.out[:0]
	}
	if len(c.staged) == 0 {
		return
	}
	sort.Slice(c.staged, func(i, j int) bool {
		a, b := &c.staged[i], &c.staged[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range c.staged {
		m := &c.staged[i]
		c.parts[m.dst].eng.ScheduleArgAt(m.at, m.fn, m.arg)
		m.fn, m.arg = nil, nil // drop references until next flush
	}
}

// lbts returns the lower bound on the next event timestamp across all
// partitions (staged mail must already be flushed), with ok=false when
// no live event exists anywhere.
func (c *Coordinator) lbts() (t units.Time, ok bool) {
	for _, p := range c.parts {
		if p.eng.LiveCount() == 0 {
			continue
		}
		et, eok := p.eng.NextEventAt()
		if !eok {
			continue
		}
		if !ok || et < t {
			t, ok = et, true
		}
	}
	return t, ok
}

// Run advances every partition to the deadline, firing all events with
// timestamps <= deadline in conservative windows. On return every
// partition clock reads exactly deadline (events beyond it stay
// queued), and all cross-partition mail generated up to the deadline
// has been delivered or remains staged for a later Run.
func (c *Coordinator) Run(deadline units.Time) {
	for {
		c.flush()
		t, ok := c.lbts()
		if !ok || t > deadline {
			break
		}
		end := t + c.lookahead
		if end > deadline {
			end = deadline
		}
		c.runWindow(end)
	}
	// Advance every clock to the deadline (no live events remain at or
	// before it; cancelled residue is drained lazily).
	for _, p := range c.parts {
		if p.eng.Now() < deadline {
			p.eng.RunUntil(deadline)
		}
	}
}

// runWindow runs every partition engine up to end, on parallel lanes
// when configured.
func (c *Coordinator) runWindow(end units.Time) {
	if c.lanes == 1 {
		for _, p := range c.parts {
			p.eng.RunUntil(end)
		}
		return
	}
	c.ensureWorkers()
	c.windowT = end
	c.cursor.Store(0)
	for _, ch := range c.begin {
		ch <- struct{}{}
	}
	var failed *laneResult
	for range c.begin {
		r := <-c.results
		if r.panic != nil && failed == nil {
			failed = &r
		}
	}
	if failed != nil {
		c.Close()
		panic(fmt.Sprintf("sim: partition %d panicked in window ending %v: %v\n%s",
			failed.part, end, failed.panic, failed.stack))
	}
}

// ensureWorkers lazily starts the persistent lane goroutines. Each
// window the lanes claim partitions from a shared cursor; the channel
// handshake publishes all engine state between rounds.
func (c *Coordinator) ensureWorkers() {
	if c.started {
		return
	}
	if c.closed {
		panic("sim: coordinator used after Close")
	}
	c.started = true
	c.begin = make([]chan struct{}, c.lanes)
	c.results = make(chan laneResult, c.lanes)
	for i := range c.begin {
		c.begin[i] = make(chan struct{}, 1)
		go c.laneLoop(c.begin[i])
	}
}

func (c *Coordinator) laneLoop(begin <-chan struct{}) {
	for range begin {
		r := laneResult{part: -1}
		func() {
			defer func() {
				if v := recover(); v != nil {
					r.panic, r.stack = v, debug.Stack()
				}
			}()
			for {
				i := c.cursor.Add(1) - 1
				if int(i) >= len(c.parts) {
					return
				}
				r.part = i
				c.parts[i].eng.RunUntil(c.windowT)
			}
		}()
		c.results <- r
	}
}

// Close stops the lane workers. The coordinator cannot Run afterwards.
// Calling Close on a coordinator that never went parallel is a no-op;
// Close is idempotent.
func (c *Coordinator) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if !c.started {
		return
	}
	for _, ch := range c.begin {
		close(ch)
	}
	c.started = false
}
