package sim

// Resource is a single-owner resource with a wait queue, used to
// model exclusive hardware: a wormhole output channel, a send DMA
// engine, the LANai CPU. Grant callbacks run synchronously from
// Release (or Acquire when the resource is free), so they execute at
// the current simulated time.
//
// The default grant order is FIFO. A round-robin resource
// (NewResourceRR) cycles between requester classes — the policy of a
// crossbar output arbitrating among input ports — while staying FIFO
// within each class.
type Resource struct {
	name      string
	owner     any
	waiters   []waiter
	grants    uint64
	rr        bool
	lastClass int
}

type waiter struct {
	owner any
	class int
	fn    func()
}

// NewResource returns a free FIFO resource. The name is used only for
// diagnostics.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// NewResourceRR returns a free resource that grants round-robin
// across requester classes.
func NewResourceRR(name string) *Resource {
	return &Resource{name: name, rr: true, lastClass: -1}
}

// Name returns the diagnostic name of the resource.
func (r *Resource) Name() string { return r.name }

// Busy reports whether the resource is currently owned.
func (r *Resource) Busy() bool { return r.owner != nil }

// Owner returns the current owner, or nil.
func (r *Resource) Owner() any { return r.owner }

// QueueLen returns the number of waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Grants returns the number of times the resource has been granted.
func (r *Resource) Grants() uint64 { return r.grants }

// Acquire requests the resource for owner (class 0). If the resource
// is free it is granted immediately: fn runs synchronously and
// Acquire reports true. Otherwise the request joins the queue and fn
// will run from a future Release.
func (r *Resource) Acquire(owner any, fn func()) bool {
	return r.AcquireClass(owner, 0, fn)
}

// AcquireClass requests the resource with an explicit arbitration
// class (meaningful for round-robin resources; ignored under FIFO).
func (r *Resource) AcquireClass(owner any, class int, fn func()) bool {
	if owner == nil {
		panic("sim: nil resource owner")
	}
	if r.owner == nil && len(r.waiters) == 0 {
		r.owner = owner
		r.grants++
		if r.rr {
			r.lastClass = class
		}
		fn()
		return true
	}
	r.waiters = append(r.waiters, waiter{owner: owner, class: class, fn: fn})
	return false
}

// TryAcquire grants the resource to owner if it is free, without
// queueing on failure.
func (r *Resource) TryAcquire(owner any) bool {
	if owner == nil {
		panic("sim: nil resource owner")
	}
	if r.owner != nil || len(r.waiters) > 0 {
		return false
	}
	r.owner = owner
	r.grants++
	return true
}

// Release frees the resource, which must be owned by owner, and grants
// it to the next waiter if any (FIFO, or round-robin over classes).
func (r *Resource) Release(owner any) {
	if r.owner != owner {
		panic("sim: release of resource " + r.name + " by non-owner")
	}
	r.owner = nil
	if len(r.waiters) == 0 {
		return
	}
	idx := 0
	if r.rr {
		idx = r.nextRR()
	}
	next := r.waiters[idx]
	// Shift rather than re-slice so released entries can be collected.
	copy(r.waiters[idx:], r.waiters[idx+1:])
	r.waiters = r.waiters[:len(r.waiters)-1]
	r.owner = next.owner
	r.grants++
	if r.rr {
		r.lastClass = next.class
	}
	next.fn()
}

// nextRR picks the first waiter of the smallest class strictly after
// lastClass in cyclic order (FIFO within a class).
func (r *Resource) nextRR() int {
	bestIdx := -1
	bestKey := -1
	span := 1 << 30
	for i, w := range r.waiters {
		// Cyclic distance from lastClass (1..span): smaller is sooner.
		d := w.class - r.lastClass
		for d <= 0 {
			d += span
		}
		if bestIdx == -1 || d < bestKey {
			bestIdx = i
			bestKey = d
		}
	}
	return bestIdx
}

// Waiters returns the owners currently queued for the resource, in
// grant order. Diagnostic only; the slice is freshly allocated.
func (r *Resource) Waiters() []any {
	out := make([]any, len(r.waiters))
	for i, w := range r.waiters {
		out[i] = w.owner
	}
	return out
}

// CancelWait removes a queued (not yet granted) request by owner.
// It reports whether a request was removed.
func (r *Resource) CancelWait(owner any) bool {
	for i, w := range r.waiters {
		if w.owner == owner {
			copy(r.waiters[i:], r.waiters[i+1:])
			r.waiters = r.waiters[:len(r.waiters)-1]
			return true
		}
	}
	return false
}
