package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// TestPendingVsLiveAfterCancelStorm pins the distinction the PDES
// coordinator depends on: after a storm of cancellations Pending still
// counts cancelled-but-undrained heap entries (it is a capacity
// metric), while LiveCount is exact. Using Pending as a quiescence test
// would deadlock termination detection; this is the regression test for
// that bug.
func TestPendingVsLiveAfterCancelStorm(t *testing.T) {
	e := NewEngine()
	const n = 1000
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, e.Schedule(units.Time(i+1)*units.Nanosecond, func() {}))
	}
	if e.LiveCount() != n || e.Pending() != n {
		t.Fatalf("after scheduling: Live=%d Pending=%d, want %d/%d", e.LiveCount(), e.Pending(), n, n)
	}
	// Cancel a deterministic 80% storm, including double-cancels.
	rng := rand.New(rand.NewSource(7))
	cancelled := 0
	for i, ev := range evs {
		if rng.Intn(5) != 0 {
			e.Cancel(ev)
			if i%3 == 0 {
				e.Cancel(ev) // double cancel must not double-decrement
			}
			cancelled++
		}
	}
	live := n - cancelled
	if e.LiveCount() != live {
		t.Fatalf("after storm: LiveCount=%d, want %d", e.LiveCount(), live)
	}
	if e.Pending() != n {
		t.Fatalf("after storm: Pending=%d, want %d (cancelled entries stay queued until drained)", e.Pending(), n)
	}
	if e.Pending() == e.LiveCount() {
		t.Fatal("Pending == LiveCount after a cancel storm; the regression this test pins is back")
	}
	e.Run()
	if e.LiveCount() != 0 || e.Pending() != 0 {
		t.Fatalf("after drain: Live=%d Pending=%d, want 0/0", e.LiveCount(), e.Pending())
	}
	if int(e.Fired()) != live {
		t.Fatalf("Fired=%d, want %d live events", e.Fired(), live)
	}
}

// TestLiveCountNestedAndRequeue exercises LiveCount under events that
// schedule and cancel other events while firing.
func TestLiveCountNestedAndRequeue(t *testing.T) {
	e := NewEngine()
	var victim Event
	victim = e.Schedule(100*units.Nanosecond, func() { t.Error("victim fired despite cancel") })
	e.Schedule(10*units.Nanosecond, func() {
		e.Cancel(victim)
		e.Schedule(5*units.Nanosecond, func() {})
		if e.LiveCount() != 1 {
			t.Errorf("inside event: LiveCount=%d, want 1 (victim cancelled, one nested)", e.LiveCount())
		}
	})
	e.Run()
	if e.LiveCount() != 0 {
		t.Fatalf("LiveCount=%d after Run, want 0", e.LiveCount())
	}
}

// TestStaleHandleCancelIsNoOp is the generation-reuse property: once an
// event fires, its slot can be reused by a later schedule (in PDES,
// typically in a later window). Cancelling the stale handle must
// neither touch the new occupant nor corrupt the live counter.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	e := NewEngine()
	fired := false
	stale := e.Schedule(units.Nanosecond, func() {})
	e.Run() // slot freed, handle now stale

	fresh := e.Schedule(units.Nanosecond, func() { fired = true })
	if fresh.idx != stale.idx {
		t.Fatalf("free-list did not reuse slot %d (got %d); test harness assumption broken", stale.idx, fresh.idx)
	}
	e.Cancel(stale) // stale generation: must be a no-op
	if e.LiveCount() != 1 {
		t.Fatalf("stale cancel changed LiveCount to %d, want 1", e.LiveCount())
	}
	if !e.Live(fresh) {
		t.Fatal("stale cancel killed the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Fatal("fresh event never fired after stale cancel")
	}
}

// TestGenerationReuseProperty drives a randomized schedule/fire/cancel
// interleaving and checks the engine's bookkeeping invariants hold no
// matter how handles go stale.
func TestGenerationReuseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		type tracked struct {
			ev    Event
			fired *bool
			dead  bool // cancelled while live
		}
		var handles []tracked
		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0, 1: // schedule
				f := new(bool)
				ev := e.Schedule(units.Time(rng.Intn(50))*units.Nanosecond, func() { *f = true })
				handles = append(handles, tracked{ev: ev, fired: f})
			case 2: // cancel a random handle, possibly stale
				if len(handles) == 0 {
					continue
				}
				h := &handles[rng.Intn(len(handles))]
				if e.Live(h.ev) {
					h.dead = true
				}
				e.Cancel(h.ev) // stale/dead handles: must be a no-op
			case 3: // fire a few events, making handles stale
				for k := 0; k < rng.Intn(4); k++ {
					if !e.Step() {
						break
					}
				}
			}
			// Invariant: LiveCount matches the tracked live set.
			liveWant := 0
			for i := range handles {
				if !handles[i].dead && !*handles[i].fired {
					liveWant++
				}
			}
			if e.LiveCount() != liveWant {
				t.Logf("seed %d step %d: LiveCount=%d, tracked live=%d", seed, step, e.LiveCount(), liveWant)
				return false
			}
			if e.LiveCount() > e.Pending() {
				t.Logf("seed %d step %d: LiveCount %d exceeds Pending %d", seed, step, e.LiveCount(), e.Pending())
				return false
			}
		}
		e.Run()
		for i := range handles {
			if handles[i].dead && *handles[i].fired {
				t.Logf("seed %d: cancelled event fired", seed)
				return false
			}
			if !handles[i].dead && !*handles[i].fired {
				t.Logf("seed %d: live event never fired", seed)
				return false
			}
		}
		return e.LiveCount() == 0 && e.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzStaleHandleCancel feeds arbitrary operation tapes into the engine
// and checks that cancelling recycled handles can never fire the wrong
// event or drive the live counter negative. Each input byte encodes one
// operation; handles deliberately outlive their events.
func FuzzStaleHandleCancel(f *testing.F) {
	f.Add([]byte{0, 0, 2, 1, 0, 2, 1, 1})
	f.Add([]byte{0, 1, 2, 0, 1, 2, 2, 2, 0})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2, 3})
	f.Fuzz(func(t *testing.T, tape []byte) {
		e := NewEngine()
		var handles []Event
		cancelled := make(map[int]bool)
		firedBy := make(map[int]*bool)
		for i, op := range tape {
			if i > 4096 {
				break
			}
			switch op % 4 {
			case 0: // schedule
				id := len(handles)
				fl := new(bool)
				firedBy[id] = fl
				delay := units.Time(op/4) * units.Nanosecond
				handles = append(handles, e.Schedule(delay, func() { *fl = true }))
			case 1: // step
				e.Step()
			case 2: // cancel handle picked by the byte, stale or not
				if len(handles) == 0 {
					continue
				}
				id := int(op/4) % len(handles)
				if e.Live(handles[id]) {
					cancelled[id] = true
				}
				e.Cancel(handles[id])
			case 3: // cancel a forged handle: wrong generation on a valid slot
				if len(handles) == 0 {
					continue
				}
				h := handles[int(op/4)%len(handles)]
				h.gen += 1 + uint32(op/4)
				e.Cancel(h) // must be a no-op regardless of forged gen
			}
			if e.LiveCount() < 0 {
				t.Fatalf("LiveCount went negative: %d", e.LiveCount())
			}
			if e.LiveCount() > e.Pending() {
				t.Fatalf("LiveCount %d > Pending %d", e.LiveCount(), e.Pending())
			}
		}
		e.Run()
		if e.LiveCount() != 0 {
			t.Fatalf("LiveCount=%d after full drain", e.LiveCount())
		}
		for id, fl := range firedBy {
			if cancelled[id] && *fl {
				t.Fatalf("event %d fired after being cancelled while live", id)
			}
		}
	})
}
