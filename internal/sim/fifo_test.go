package sim

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			q.Push(i)
		}
		if q.Len() != 100 {
			t.Fatalf("Len = %d, want 100", q.Len())
		}
		for i := 0; i < 100; i++ {
			if got := q.At(0); got != i {
				t.Fatalf("At(0) = %d, want %d", got, i)
			}
			if got := q.Pop(); got != i {
				t.Fatalf("Pop = %d, want %d", got, i)
			}
		}
	}
}

func TestFIFOInterleaved(t *testing.T) {
	var q FIFO[int]
	next, popped := 0, 0
	for i := 0; i < 1000; i++ {
		q.Push(next)
		next++
		if i%3 == 0 {
			if got := q.Pop(); got != popped {
				t.Fatalf("Pop = %d, want %d", got, popped)
			}
			popped++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != popped {
			t.Fatalf("drain Pop = %d, want %d", got, popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d of %d pushed", popped, next)
	}
}

func TestFIFOAt(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	for i := 0; i < q.Len(); i++ {
		if got := q.At(i); got != i+2 {
			t.Errorf("At(%d) = %d, want %d", i, got, i+2)
		}
	}
}

func TestFIFOClear(t *testing.T) {
	var q FIFO[*int]
	v := 7
	for i := 0; i < 5; i++ {
		q.Push(&v)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d", q.Len())
	}
	for _, p := range q.buf {
		if p != nil {
			t.Fatal("Clear left a live reference in the buffer")
		}
	}
}

func TestFIFOSteadyStateDoesNotAllocate(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 64; i++ {
		q.Push(i)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.Push(i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state FIFO churn allocates %.1f/op, want 0", allocs)
	}
}
