// Package sim implements the deterministic discrete-event engine that
// drives every model in the simulator: the wormhole fabric, the LANai
// NIC, the MCP firmware, and the GM host layer.
//
// The engine maintains a picosecond-resolution clock and a priority
// queue of events. Events scheduled for the same instant fire in the
// order they were scheduled, which makes every simulation run
// reproducible byte-for-byte given the same inputs.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       units.Time
	seq      uint64
	index    int // heap index, -1 once removed
	fn       func()
	canceled bool
}

// At returns the simulated time the event is scheduled for.
func (e *Event) At() units.Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// eventHeap orders events by time, then by scheduling sequence.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel.
//
// The zero value is not usable; create engines with NewEngine. An
// Engine is not safe for concurrent use: a simulation is a single
// logical timeline and runs on one goroutine by design.
type Engine struct {
	now     units.Time
	seq     uint64
	pq      eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and no events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Pending returns the number of events waiting to fire (including
// cancelled events that have not yet been drained).
func (e *Engine) Pending() int { return len(e.pq) }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run after delay. A zero delay schedules fn for
// the current instant, after all events already queued for that
// instant. Negative delays panic: the simulated past is immutable.
func (e *Engine) Schedule(delay units.Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute time t, which must not be in
// the past.
func (e *Engine) ScheduleAt(t units.Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// Cancel prevents ev from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	// Leave the event in the heap; it is skipped when popped. This
	// keeps Cancel O(1) amortised, which matters for the GM layer's
	// retransmission timers (almost all of which are cancelled).
	ev.fn = nil
}

// Step fires the next pending event, if any, and reports whether an
// event was fired. Cancelled events are drained silently.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.fired++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain
// queued.
func (e *Engine) RunUntil(deadline units.Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor runs the simulation for d simulated time from now.
func (e *Engine) RunFor(d units.Time) {
	e.RunUntil(e.now + d)
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the next live event without firing it.
func (e *Engine) peek() *Event {
	for len(e.pq) > 0 {
		if !e.pq[0].canceled {
			return e.pq[0]
		}
		heap.Pop(&e.pq)
	}
	return nil
}

// NextEventAt returns the time of the next live event, or ok=false if
// the queue is empty.
func (e *Engine) NextEventAt() (t units.Time, ok bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}
