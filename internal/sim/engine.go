// Package sim implements the deterministic discrete-event engine that
// drives every model in the simulator: the wormhole fabric, the LANai
// NIC, the MCP firmware, and the GM host layer.
//
// The engine maintains a picosecond-resolution clock and a priority
// queue of events. Events scheduled for the same instant fire in the
// order they were scheduled, which makes every simulation run
// reproducible byte-for-byte given the same inputs.
//
// The queue is an index-based binary heap over a slab of event slots
// with a free-list: scheduling an event in steady state reuses a slot
// and a heap cell that earlier events vacated, so the hot
// Schedule/Step cycle performs no allocation (see alloc_test.go).
// Callers that would otherwise allocate a capturing closure per event
// can use ScheduleArg/ScheduleArgAt, which carry a single argument to
// a shared callback.
package sim

import (
	"fmt"

	"repro/internal/units"
)

// Event is a handle to a scheduled callback, valid for cancellation
// until the event fires. The zero value is NoEvent. Handles carry a
// generation number, so cancelling an already-fired event whose slot
// has been reused is a safe no-op.
type Event struct {
	idx int32
	gen uint32
}

// NoEvent is the zero handle: it names no event and Cancel ignores it.
var NoEvent = Event{}

// Valid reports whether the handle names an event that was scheduled
// (it may have fired or been cancelled since).
func (ev Event) Valid() bool { return ev.gen != 0 }

// slot is the slab entry behind one scheduled event. Exactly one of
// fn/afn is set while the slot is queued and live; both are nil once
// the event is cancelled or the slot is free.
type slot struct {
	at  units.Time
	seq uint64
	fn  func()
	afn func(any)
	arg any
	gen uint32
}

func (s *slot) live() bool { return s.fn != nil || s.afn != nil }

// Engine is a discrete-event simulation kernel.
//
// The zero value is not usable; create engines with NewEngine. An
// Engine is not safe for concurrent use: a simulation is a single
// logical timeline and runs on one goroutine by design.
type Engine struct {
	now     units.Time
	seq     uint64
	slots   []slot
	free    []int32 // free slot indexes (LIFO)
	heap    []int32 // slot indexes ordered by (at, seq)
	live    int     // queued, uncancelled events (heap minus cancelled residue)
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and no events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Pending returns the number of events waiting to fire (including
// cancelled events that have not yet been drained). It overcounts the
// work remaining after cancellations; quiescence checks must use
// LiveCount.
func (e *Engine) Pending() int { return len(e.heap) }

// LiveCount returns the exact number of queued, uncancelled events.
// Unlike Pending it excludes cancelled-but-undrained heap entries, so
// LiveCount() == 0 is a correct quiescence test (used by the PDES
// coordinator for termination detection).
func (e *Engine) LiveCount() int { return e.live }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run after delay. A zero delay schedules fn for
// the current instant, after all events already queued for that
// instant. Negative delays panic: the simulated past is immutable.
func (e *Engine) Schedule(delay units.Time, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(e.now+delay, fn, nil, nil)
}

// ScheduleAt queues fn to run at absolute time t, which must not be in
// the past.
func (e *Engine) ScheduleAt(t units.Time, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(t, fn, nil, nil)
}

// ScheduleArg queues fn(arg) to run after delay. It exists for hot
// paths: a long-lived fn plus a per-event arg avoids allocating a
// capturing closure for every event.
func (e *Engine) ScheduleArg(delay units.Time, fn func(any), arg any) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(e.now+delay, nil, fn, arg)
}

// ScheduleArgAt queues fn(arg) to run at absolute time t.
func (e *Engine) ScheduleArgAt(t units.Time, fn func(any), arg any) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return e.schedule(t, nil, fn, arg)
}

func (e *Engine) schedule(t units.Time, fn func(), afn func(any), arg any) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{gen: 1})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at, s.seq = t, e.seq
	s.fn, s.afn, s.arg = fn, afn, arg
	e.seq++
	e.live++
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	return Event{idx: idx, gen: s.gen}
}

// Cancel prevents ev from firing. Cancelling NoEvent, an already-fired
// or an already-cancelled event is a no-op.
func (e *Engine) Cancel(ev Event) {
	if !ev.Valid() || int(ev.idx) >= len(e.slots) {
		return
	}
	s := &e.slots[ev.idx]
	if s.gen != ev.gen {
		return // the event fired; its slot may already serve another
	}
	// Leave the slot in the heap; it is recycled when popped. This
	// keeps Cancel O(1), which matters for the GM layer's
	// retransmission timers (almost all of which are cancelled).
	if s.live() {
		e.live--
	}
	s.fn, s.afn, s.arg = nil, nil, nil
}

// Live reports whether ev is still queued and uncancelled.
func (e *Engine) Live(ev Event) bool {
	if !ev.Valid() || int(ev.idx) >= len(e.slots) {
		return false
	}
	s := &e.slots[ev.idx]
	return s.gen == ev.gen && s.live()
}

// EventTime returns the instant ev is scheduled for, with ok=false if
// the event has already fired, was cancelled, or is NoEvent.
func (e *Engine) EventTime(ev Event) (t units.Time, ok bool) {
	if !e.Live(ev) {
		return 0, false
	}
	return e.slots[ev.idx].at, true
}

// recycle returns a popped slot to the free-list and bumps its
// generation so outstanding handles to the old event go stale.
func (e *Engine) recycle(idx int32) {
	s := &e.slots[idx]
	s.fn, s.afn, s.arg = nil, nil, nil
	s.gen++
	if s.gen == 0 {
		s.gen = 1 // keep the zero generation reserved for NoEvent
	}
	e.free = append(e.free, idx)
}

// Step fires the next pending event, if any, and reports whether an
// event was fired. Cancelled events are drained silently.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		idx := e.heap[0]
		e.popRoot()
		s := &e.slots[idx]
		at := s.at
		fn, afn, arg := s.fn, s.afn, s.arg
		e.recycle(idx)
		if fn == nil && afn == nil {
			continue // cancelled
		}
		if at < e.now {
			panic("sim: time went backwards")
		}
		e.live--
		e.now = at
		e.fired++
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline remain
// queued.
func (e *Engine) RunUntil(deadline units.Time) {
	e.stopped = false
	for !e.stopped {
		t, ok := e.NextEventAt()
		if !ok || t > deadline {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor runs the simulation for d simulated time from now.
func (e *Engine) RunFor(d units.Time) {
	e.RunUntil(e.now + d)
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// NextEventAt returns the time of the next live event, or ok=false if
// the queue is empty. Cancelled events at the front are drained.
func (e *Engine) NextEventAt() (t units.Time, ok bool) {
	for len(e.heap) > 0 {
		s := &e.slots[e.heap[0]]
		if s.live() {
			return s.at, true
		}
		idx := e.heap[0]
		e.popRoot()
		e.recycle(idx)
	}
	return 0, false
}

// ---------------------------------------------------------------
// Index heap over (at, seq). Plain slice operations: no interface
// boxing, no per-operation allocation once capacity is warm.

// before reports whether slot a fires before slot b.
func (e *Engine) before(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && e.before(h[r], h[l]) {
			least = r
		}
		if !e.before(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// popRoot removes the heap's minimum element (the caller has already
// read e.heap[0]).
func (e *Engine) popRoot() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
}
