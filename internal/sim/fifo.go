package sim

// FIFO is a growable ring queue. The simulation's steady-state queues
// (NIC send/receive staging, GM backlogs) push at the tail and pop at
// the head; a ring reuses its backing array instead of the
// slice-head-advance idiom (q = q[1:]), whose append side reallocates
// once per buffer length. Push amortises to zero allocations once the
// queue has reached its high-water capacity.
type FIFO[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return q.n }

// Push appends v at the tail.
func (q *FIFO[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// Pop removes and returns the head. It panics on an empty queue.
func (q *FIFO[T]) Pop() T {
	if q.n == 0 {
		panic("sim: Pop on empty FIFO")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // drop the reference for the collector
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v
}

// At returns the i-th element from the head (0 is the next Pop).
func (q *FIFO[T]) At(i int) T {
	if i < 0 || i >= q.n {
		panic("sim: FIFO index out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// Clear empties the queue, releasing element references but keeping
// the capacity.
func (q *FIFO[T]) Clear() {
	var zero T
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head = 0
	q.n = 0
}

func (q *FIFO[T]) grow() {
	next := make([]T, 2*len(q.buf)+4)
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}
