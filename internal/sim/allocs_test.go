package sim

import (
	"testing"

	"repro/internal/units"
)

// The engine's steady state — schedule an event into a recycled slot,
// pop it, fire it — must not allocate: the slot slab and the heap
// array are warm after the first few events, and Event handles are
// plain values. This is the foundation of the hot-path allocation
// budget; see DESIGN.md §8.
func TestEngineSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(units.Time(i)*units.Nanosecond, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		e.Schedule(units.Nanosecond, fn)
		e.Schedule(2*units.Nanosecond, fn)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("Schedule+Step allocates %.1f/op in steady state, want 0", allocs)
	}
}

// ScheduleArg exists so hot paths can fire a long-lived func(any)
// with a pointer argument instead of closing over the argument:
// boxing a pointer into an interface does not allocate.
func TestScheduleArgSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	sink := 0
	afn := func(a any) { *(a.(*int))++ }
	arg := &sink
	for i := 0; i < 16; i++ {
		e.ScheduleArg(units.Nanosecond, afn, arg)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		e.ScheduleArg(units.Nanosecond, afn, arg)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("ScheduleArg+Step allocates %.1f/op in steady state, want 0", allocs)
	}
}

// Cancel and re-schedule must also be allocation-free: the cancelled
// slot goes back on the free list and the lazy heap drain reuses it.
func TestCancelSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 16; i++ {
		e.Cancel(e.Schedule(units.Nanosecond, fn))
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		ev := e.Schedule(units.Nanosecond, fn)
		e.Cancel(ev)
		e.Schedule(units.Nanosecond, fn)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("Schedule+Cancel allocates %.1f/op in steady state, want 0", allocs)
	}
}

// A resource's acquire/release cycle, including queued waiters, must
// not allocate once the waiter slice is warm.
func TestResourceSteadyStateDoesNotAllocate(t *testing.T) {
	for _, rr := range []bool{false, true} {
		mk := NewResource
		if rr {
			mk = NewResourceRR
		}
		r := mk("pin")
		a, b := new(int), new(int)
		fn := func() {}
		r.Acquire(a, fn)
		r.AcquireClass(b, 1, fn)
		r.Release(a)
		r.Release(b)
		allocs := testing.AllocsPerRun(200, func() {
			r.Acquire(a, fn)
			r.AcquireClass(b, 1, fn) // queues behind a
			r.Release(a)             // grants b
			r.Release(b)
		})
		if allocs != 0 {
			t.Errorf("rr=%v: acquire/release allocates %.1f/op in steady state, want 0", rr, allocs)
		}
	}
}
