package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/units"
)

// pingWorld builds a deterministic multi-partition workload: every
// partition runs a local timer chain and mails its right neighbour on
// each tick with delay = lookahead + a seeded jitter. Each partition
// records (time, tag) pairs; the trace is the observable output.
type pingWorld struct {
	c     *Coordinator
	trace [][]string
}

func buildPingWorld(parts, lanes int, lookahead units.Time, seed int64) *pingWorld {
	w := &pingWorld{
		c:     NewCoordinator(parts, lookahead, lanes),
		trace: make([][]string, parts),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < parts; i++ {
		i := i
		p := w.c.Partition(i)
		period := units.Time(50+rng.Intn(200)) * units.Nanosecond
		jitter := units.Time(rng.Intn(100)) * units.Nanosecond
		var tick func()
		n := 0
		tick = func() {
			n++
			w.trace[i] = append(w.trace[i], fmt.Sprintf("%d:tick%d@%d", i, n, int64(p.Engine().Now())))
			dst := (i + 1) % parts
			tag := fmt.Sprintf("%d->%d#%d", i, dst, n)
			p.Send(dst, lookahead+jitter, func(arg any) {
				q := w.c.Partition(dst)
				w.trace[dst] = append(w.trace[dst], fmt.Sprintf("%d:recv %s@%d", dst, arg.(string), int64(q.Engine().Now())))
			}, tag)
			if n < 20 {
				p.Engine().Schedule(period, tick)
			}
		}
		p.Engine().Schedule(units.Time(rng.Intn(50))*units.Nanosecond, tick)
	}
	return w
}

// serialPingTrace runs the workload on a single lane — the serial
// reference every parallel lane count must reproduce byte-for-byte.
func serialPingTrace(parts int, lookahead units.Time, seed int64) [][]string {
	w := buildPingWorld(parts, 1, lookahead, seed)
	defer w.c.Close()
	w.c.Run(100 * units.Microsecond)
	return w.trace
}

func TestCoordinatorLaneInvariance(t *testing.T) {
	const parts = 5
	const lookahead = 120 * units.Nanosecond
	for _, seed := range []int64{1, 7, 42} {
		want := serialPingTrace(parts, lookahead, seed)
		for _, lanes := range []int{2, 4, 8} {
			w := buildPingWorld(parts, lanes, lookahead, seed)
			w.c.Run(100 * units.Microsecond)
			w.c.Close()
			if !reflect.DeepEqual(w.trace, want) {
				t.Fatalf("seed %d lanes %d: trace differs from lanes=1\nlanes=1: %v\nlanes=%d: %v",
					seed, lanes, want, lanes, w.trace)
			}
		}
	}
}

// TestCoordinatorConservative pins the core PDES invariant: a mail sent
// at time u lands at u+delay, after every event the destination fired
// before that instant and interleaved with same-instant local events in
// flush order — i.e. timestamps per partition are non-decreasing.
func TestCoordinatorConservative(t *testing.T) {
	w := buildPingWorld(4, 4, 120*units.Nanosecond, 99)
	defer w.c.Close()
	w.c.Run(100 * units.Microsecond)
	for i, tr := range w.trace {
		var last units.Time
		for _, line := range tr {
			at := parseAt(t, line)
			if at < last {
				t.Fatalf("partition %d: time went backwards in trace: %v", i, tr)
			}
			last = at
		}
	}
}

func parseAt(t *testing.T, line string) units.Time {
	t.Helper()
	i := strings.LastIndexByte(line, '@')
	if i < 0 {
		t.Fatalf("malformed trace line %q", line)
	}
	ps, err := strconv.ParseInt(line[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("cannot parse time from %q: %v", line, err)
	}
	return units.Time(ps)
}

func TestCoordinatorQuiescence(t *testing.T) {
	c := NewCoordinator(3, 100*units.Nanosecond, 2)
	defer c.Close()
	if !c.Quiescent() {
		t.Fatal("empty coordinator not quiescent")
	}
	p0 := c.Partition(0)
	fired := 0
	ev := p0.Engine().Schedule(50*units.Nanosecond, func() { fired++ })
	p0.Engine().Schedule(60*units.Nanosecond, func() {
		fired++
		p0.Send(2, 100*units.Nanosecond, func(any) { fired++ }, nil)
	})
	if c.Quiescent() {
		t.Fatal("coordinator with pending events reports quiescent")
	}
	// A cancelled event must not keep the system alive (LiveCount, not
	// Pending, drives termination).
	p0.Engine().Cancel(ev)
	c.Run(units.Millisecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (one cancelled, one local, one mailed)", fired)
	}
	if !c.Quiescent() {
		t.Fatal("coordinator not quiescent after Run drained everything")
	}
	if got := p0.Engine().Now(); got != units.Millisecond {
		t.Fatalf("partition clock = %v, want deadline %v", got, units.Millisecond)
	}
}

func TestCoordinatorLookaheadViolationPanics(t *testing.T) {
	c := NewCoordinator(2, 100*units.Nanosecond, 1)
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("send below lookahead did not panic")
		}
	}()
	c.Partition(0).Send(1, 99*units.Nanosecond, func(any) {}, nil)
}

func TestCoordinatorPartitionPanicPropagates(t *testing.T) {
	c := NewCoordinator(4, 100*units.Nanosecond, 4)
	defer c.Close()
	c.Partition(2).Engine().Schedule(10*units.Nanosecond, func() {
		panic("boom in partition 2")
	})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("partition panic did not propagate out of Run")
		}
		if s := fmt.Sprint(v); !strings.Contains(s, "partition 2") || !strings.Contains(s, "boom in partition 2") {
			t.Fatalf("panic message lost context: %s", s)
		}
	}()
	c.Run(units.Microsecond)
}

func TestCoordinatorRejectsBadConfig(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero partitions", func() { NewCoordinator(0, units.Nanosecond, 1) })
	mustPanic("zero lookahead", func() { NewCoordinator(2, 0, 1) })
	c := NewCoordinator(2, units.Nanosecond, 1)
	defer c.Close()
	mustPanic("unknown dst", func() { c.Partition(0).Send(7, units.Nanosecond, func(any) {}, nil) })
	mustPanic("nil fn", func() { c.Partition(0).Send(1, units.Nanosecond, nil, nil) })
}

// TestCoordinatorRepeatedRuns checks windows compose: running to t1
// then t2 equals running straight to t2.
func TestCoordinatorRepeatedRuns(t *testing.T) {
	const lookahead = 120 * units.Nanosecond
	straight := buildPingWorld(3, 2, lookahead, 5)
	straight.c.Run(60 * units.Microsecond)
	straight.c.Close()

	split := buildPingWorld(3, 2, lookahead, 5)
	split.c.Run(9 * units.Microsecond)
	split.c.Run(31 * units.Microsecond)
	split.c.Run(60 * units.Microsecond)
	split.c.Close()

	if !reflect.DeepEqual(straight.trace, split.trace) {
		t.Fatalf("split runs diverge from straight run:\nstraight: %v\nsplit:    %v",
			straight.trace, split.trace)
	}
}
