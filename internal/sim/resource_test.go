package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceImmediateGrant(t *testing.T) {
	r := NewResource("chan")
	granted := false
	if !r.Acquire("a", func() { granted = true }) {
		t.Error("Acquire of free resource did not grant immediately")
	}
	if !granted || !r.Busy() || r.Owner() != "a" {
		t.Errorf("granted=%v busy=%v owner=%v", granted, r.Busy(), r.Owner())
	}
	if r.Name() != "chan" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestResourceFIFO(t *testing.T) {
	r := NewResource("chan")
	var order []string
	r.Acquire("a", func() { order = append(order, "a") })
	r.Acquire("b", func() { order = append(order, "b") })
	r.Acquire("c", func() { order = append(order, "c") })
	if r.QueueLen() != 2 {
		t.Errorf("QueueLen = %d, want 2", r.QueueLen())
	}
	r.Release("a")
	r.Release("b")
	r.Release("c")
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("grant order = %v", order)
	}
	if r.Busy() {
		t.Error("resource still busy after all releases")
	}
	if r.Grants() != 3 {
		t.Errorf("Grants = %d, want 3", r.Grants())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	r := NewResource("dma")
	if !r.TryAcquire("a") {
		t.Error("TryAcquire on free resource failed")
	}
	if r.TryAcquire("b") {
		t.Error("TryAcquire on busy resource succeeded")
	}
	r.Release("a")
	// With a waiter queued, TryAcquire must fail even when free,
	// otherwise it would jump the FIFO queue.
	r.TryAcquire("a")
	r.Acquire("b", func() {})
	r.Release("a")
	r.Release("b")
	r.Acquire("c", func() {})
	r.Release("c")
	if r.Busy() {
		t.Error("busy after drain")
	}
}

func TestResourceTryAcquireRespectsQueue(t *testing.T) {
	r := NewResource("dma")
	r.Acquire("a", func() {})
	bGranted := false
	r.Acquire("b", func() { bGranted = true })
	r.Release("a")
	if !bGranted {
		t.Fatal("queued waiter not granted on release")
	}
	if r.Owner() != "b" {
		t.Errorf("owner = %v, want b", r.Owner())
	}
}

func TestResourceCancelWait(t *testing.T) {
	r := NewResource("chan")
	r.Acquire("a", func() {})
	bGranted := false
	cGranted := false
	r.Acquire("b", func() { bGranted = true })
	r.Acquire("c", func() { cGranted = true })
	if !r.CancelWait("b") {
		t.Error("CancelWait(b) = false")
	}
	if r.CancelWait("b") {
		t.Error("second CancelWait(b) = true")
	}
	r.Release("a")
	if bGranted {
		t.Error("cancelled waiter granted")
	}
	if !cGranted {
		t.Error("c not granted after b cancelled")
	}
}

func TestResourceReleaseByNonOwnerPanics(t *testing.T) {
	r := NewResource("chan")
	r.Acquire("a", func() {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on release by non-owner")
		}
	}()
	r.Release("b")
}

func TestResourceNilOwnerPanics(t *testing.T) {
	r := NewResource("chan")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on nil owner")
		}
	}()
	r.Acquire(nil, func() {})
}

func TestRoundRobinGrantsRotateClasses(t *testing.T) {
	r := NewResourceRR("xbar")
	var order []string
	r.AcquireClass("hold", 9, func() {})
	// Queue two waiters per class, interleaved adversarially so FIFO
	// would serve a0, a1 back to back.
	r.AcquireClass("a0", 1, func() { order = append(order, "a0") })
	r.AcquireClass("a1", 1, func() { order = append(order, "a1") })
	r.AcquireClass("b0", 2, func() { order = append(order, "b0") })
	r.AcquireClass("b1", 2, func() { order = append(order, "b1") })
	for _, owner := range []string{"hold", "a0", "b0", "a1", "b1"} {
		r.Release(owner)
	}
	want := []string{"a0", "b0", "a1", "b1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestRoundRobinFIFOWithinClass(t *testing.T) {
	r := NewResourceRR("xbar")
	var order []string
	r.AcquireClass("hold", 0, func() {})
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		r.AcquireClass(name, 5, func() { order = append(order, name) })
	}
	r.Release("hold")
	for _, o := range []string{"a", "b", "c"} {
		r.Release(o)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestRoundRobinSkipsEmptyClasses(t *testing.T) {
	r := NewResourceRR("xbar")
	var got string
	r.AcquireClass("hold", 2, func() {})
	r.AcquireClass("w", 7, func() { got = "w" })
	r.Release("hold")
	if got != "w" {
		t.Error("lone waiter in a far class not granted")
	}
}

func TestRoundRobinNegativeClasses(t *testing.T) {
	// Injection channels use class -1; the cyclic distance math must
	// tolerate negatives.
	r := NewResourceRR("xbar")
	var order []string
	r.AcquireClass("hold", -1, func() {})
	r.AcquireClass("x", -1, func() { order = append(order, "x") })
	r.AcquireClass("y", 3, func() { order = append(order, "y") })
	r.Release("hold")
	r.Release(order[0])
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	// After a class -1 grant ("hold"), class 3 is the next distinct
	// class in cyclic order.
	if order[0] != "y" || order[1] != "x" {
		t.Errorf("order = %v, want [y x]", order)
	}
}

// Property: for any interleaving of acquires and releases, grants are
// FIFO and the resource has at most one owner.
func TestResourceFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewResource("p")
		next := 0
		var granted []int
		var held []int
		for _, acq := range ops {
			if acq {
				id := next
				next++
				r.Acquire(id, func() { granted = append(granted, id); held = append(held, id) })
			} else if len(held) > 0 {
				r.Release(held[0])
				held = held[1:]
			}
		}
		// Grants must be a prefix-ordered sequence 0,1,2,...
		for i, g := range granted {
			if g != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
