// Package trace records packet-lifecycle events from the fabric, the
// MCP firmware and the GM layer, for debugging simulations and for
// verifying mechanism behaviour in tests (e.g. that an in-transit
// packet was detected, re-injected, and delivered in that order).
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/topology"
	"repro/internal/units"
)

// Kind classifies an event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	Inject         Kind = iota // packet header offered to the network
	HeaderOut                  // header left the source NIC
	HeaderArrive               // header reached a host port
	Delivered                  // tail fully received at a host
	Dropped                    // flushed (misroute or pool overflow)
	ITBDetect                  // in-transit marker recognised
	ITBPending                 // send engine busy; pending flag raised
	ITBReinject                // re-injection programmed
	SendQueued                 // GM handed a packet to the MCP
	RecvToHost                 // RDMA to host memory complete
	Retransmit                 // GM go-back-N retransmission
	LinkFault                  // a link failed or recovered (detail: down/up/ber)
	NICFault                   // a NIC fault event (detail: stall/resume/pool-exhaust/pool-restore)
	RouteRecompute             // retained for value stability; superseded by EpochPublish
	PeerDead                   // GM declared a peer dead after repeated timeouts
	// Recovery-protocol kinds (appended; earlier values are stable).
	Heartbeat       // recovery probe sent or answered
	HostSuspected   // heartbeat misses crossed the suspect threshold
	HostConfirmed   // heartbeat misses crossed the confirm threshold
	HostRestored    // a suspected/confirmed host answered again
	EpochPublish    // a new epoch-versioned route table started distributing
	EpochInstall    // one host installed the epoch's table
	PeerResurrected // a dead-peer verdict was lifted by a table install
	StaleEpochDrop  // an ITB host dropped a packet with a stale epoch
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Inject:
		return "inject"
	case HeaderOut:
		return "header-out"
	case HeaderArrive:
		return "header-arrive"
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case ITBDetect:
		return "itb-detect"
	case ITBPending:
		return "itb-pending"
	case ITBReinject:
		return "itb-reinject"
	case SendQueued:
		return "send-queued"
	case RecvToHost:
		return "recv-to-host"
	case Retransmit:
		return "retransmit"
	case LinkFault:
		return "link-fault"
	case NICFault:
		return "nic-fault"
	case RouteRecompute:
		return "route-recompute"
	case PeerDead:
		return "peer-dead"
	case Heartbeat:
		return "heartbeat"
	case HostSuspected:
		return "host-suspected"
	case HostConfirmed:
		return "host-confirmed"
	case HostRestored:
		return "host-restored"
	case EpochPublish:
		return "epoch-publish"
	case EpochInstall:
		return "epoch-install"
	case PeerResurrected:
		return "peer-resurrected"
	case StaleEpochDrop:
		return "stale-epoch-drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At     units.Time
	Kind   Kind
	Node   topology.NodeID // where it happened
	Packet uint64          // packet id (0 if not applicable)
	Detail string
}

// String renders one line.
func (e Event) String() string {
	s := fmt.Sprintf("%12s %-13s node=%d pkt=%d", e.At, e.Kind, e.Node, e.Packet)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Recorder collects events in a bounded circular ring. The zero value
// is unusable; use NewRecorder. Recorders are not goroutine safe — the
// simulation is single-threaded by design.
//
// Record is O(1): once the ring is full, the newest event overwrites
// the oldest in place (the previous implementation shifted the whole
// slice on every overflow, an O(max) cost on the tracing hot path).
type Recorder struct {
	buf []Event
	// head is the index of the oldest retained event; non-zero only
	// after the ring has wrapped.
	head  int
	max   int
	total uint64
}

// NewRecorder keeps at most max events (older ones are discarded).
// max <= 0 means unbounded.
func NewRecorder(max int) *Recorder {
	return &Recorder{max: max}
}

// Record appends an event, overwriting the oldest retained one when
// the ring is full.
func (r *Recorder) Record(e Event) {
	r.total++
	if r.max > 0 && len(r.buf) == r.max {
		r.buf[r.head] = e
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
		return
	}
	r.buf = append(r.buf, e)
}

// Events returns the retained events in oldest-to-newest recording
// order, unrolling the ring across the wraparound point. Before any
// wraparound the internal slice is returned as-is (shared; do not
// modify); after wraparound a fresh ordered copy is returned.
func (r *Recorder) Events() []Event {
	if r.head == 0 {
		return r.buf
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Total returns how many events were ever recorded, including those
// the bounded ring has since discarded.
func (r *Recorder) Total() uint64 { return r.total }

// Retained returns how many events the ring currently holds.
func (r *Recorder) Retained() int { return len(r.buf) }

// Discarded returns how many recorded events the bounded ring has
// overwritten: Total() minus the retained count.
func (r *Recorder) Discarded() uint64 { return r.total - uint64(len(r.buf)) }

// Packet returns the retained events of one packet, in order.
func (r *Recorder) Packet(id uint64) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Packet == id {
			out = append(out, e)
		}
	}
	return out
}

// OfKind returns the retained events of one kind, in order.
func (r *Recorder) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// WriteText dumps the retained events in order, one per line.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// jsonlEvent is the structured export schema of one event.
type jsonlEvent struct {
	AtPs   int64  `json:"at_ps"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Packet uint64 `json:"packet,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// WriteJSONL exports the retained events in order as JSON Lines, one
// object per event: {"at_ps":..., "kind":"...", "node":..., "packet":...,
// "detail":"..."}. Timestamps are simulated picoseconds. The encoding
// is deterministic, so exports diff cleanly across runs.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(jsonlEvent{
			AtPs:   int64(e.At),
			Kind:   e.Kind.String(),
			Node:   int(e.Node),
			Packet: e.Packet,
			Detail: e.Detail,
		}); err != nil {
			return err
		}
	}
	return nil
}
