// Package trace records packet-lifecycle events from the fabric, the
// MCP firmware and the GM layer, for debugging simulations and for
// verifying mechanism behaviour in tests (e.g. that an in-transit
// packet was detected, re-injected, and delivered in that order).
package trace

import (
	"fmt"
	"io"

	"repro/internal/topology"
	"repro/internal/units"
)

// Kind classifies an event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	Inject       Kind = iota // packet header offered to the network
	HeaderOut                // header left the source NIC
	HeaderArrive             // header reached a host port
	Delivered                // tail fully received at a host
	Dropped                  // flushed (misroute or pool overflow)
	ITBDetect                // in-transit marker recognised
	ITBPending               // send engine busy; pending flag raised
	ITBReinject              // re-injection programmed
	SendQueued               // GM handed a packet to the MCP
	RecvToHost               // RDMA to host memory complete
	Retransmit               // GM go-back-N retransmission
	LinkFault                // a link failed or recovered (detail: down/up/ber)
	NICFault                 // a NIC fault event (detail: stall/resume/pool-exhaust/pool-restore)
	RouteRecompute           // route table rebuilt around the failed set
	PeerDead                 // GM declared a peer dead after repeated timeouts
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Inject:
		return "inject"
	case HeaderOut:
		return "header-out"
	case HeaderArrive:
		return "header-arrive"
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case ITBDetect:
		return "itb-detect"
	case ITBPending:
		return "itb-pending"
	case ITBReinject:
		return "itb-reinject"
	case SendQueued:
		return "send-queued"
	case RecvToHost:
		return "recv-to-host"
	case Retransmit:
		return "retransmit"
	case LinkFault:
		return "link-fault"
	case NICFault:
		return "nic-fault"
	case RouteRecompute:
		return "route-recompute"
	case PeerDead:
		return "peer-dead"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At     units.Time
	Kind   Kind
	Node   topology.NodeID // where it happened
	Packet uint64          // packet id (0 if not applicable)
	Detail string
}

// String renders one line.
func (e Event) String() string {
	s := fmt.Sprintf("%12s %-13s node=%d pkt=%d", e.At, e.Kind, e.Node, e.Packet)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Recorder collects events in a bounded ring. The zero value is
// unusable; use NewRecorder. Recorders are not goroutine safe — the
// simulation is single-threaded by design.
type Recorder struct {
	events []Event
	max    int
	total  uint64
}

// NewRecorder keeps at most max events (older ones are discarded).
// max <= 0 means unbounded.
func NewRecorder(max int) *Recorder {
	return &Recorder{max: max}
}

// Record appends an event.
func (r *Recorder) Record(e Event) {
	r.total++
	if r.max > 0 && len(r.events) == r.max {
		copy(r.events, r.events[1:])
		r.events = r.events[:r.max-1]
	}
	r.events = append(r.events, e)
}

// Events returns the retained events in order. The slice is shared;
// do not modify.
func (r *Recorder) Events() []Event { return r.events }

// Total returns how many events were recorded (including discarded).
func (r *Recorder) Total() uint64 { return r.total }

// Packet returns the retained events of one packet, in order.
func (r *Recorder) Packet(id uint64) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Packet == id {
			out = append(out, e)
		}
	}
	return out
}

// OfKind returns the retained events of one kind, in order.
func (r *Recorder) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// WriteText dumps the retained events, one per line.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, e := range r.events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}
