package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 1, Kind: Inject, Packet: 7})
	r.Record(Event{At: 2, Kind: Delivered, Packet: 7})
	r.Record(Event{At: 3, Kind: Inject, Packet: 8})
	if r.Total() != 3 || len(r.Events()) != 3 {
		t.Fatalf("total=%d retained=%d", r.Total(), len(r.Events()))
	}
	if got := r.Packet(7); len(got) != 2 || got[0].Kind != Inject || got[1].Kind != Delivered {
		t.Errorf("Packet(7) = %v", got)
	}
	if got := r.OfKind(Inject); len(got) != 2 {
		t.Errorf("OfKind(Inject) = %v", got)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: units.Time(i), Kind: Inject})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].At != 7 || evs[2].At != 9 {
		t.Errorf("ring kept %v..%v, want 7..9", evs[0].At, evs[2].At)
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Inject, HeaderOut, HeaderArrive, Delivered, Dropped,
		ITBDetect, ITBPending, ITBReinject, SendQueued, RecvToHost, Retransmit}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}

func TestEventStringAndWriteText(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 125 * units.Nanosecond, Kind: ITBDetect, Node: 4, Packet: 9, Detail: "x"})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"itb-detect", "node=4", "pkt=9", "x", "125"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}

// Property: a ring recorder always retains the most recent min(n, max)
// events in strict oldest-to-newest order across any number of
// wraparounds, and its accounting always satisfies
// Total = Retained + Discarded. This is the regression net for the
// circular-buffer rewrite: an off-by-one in the head index would
// surface here as a mis-ordered or mis-counted window.
func TestRingWraparoundProperty(t *testing.T) {
	f := func(maxRaw uint8, n uint16) bool {
		max := int(maxRaw%20) + 1
		r := NewRecorder(max)
		for i := 0; i < int(n); i++ {
			r.Record(Event{At: units.Time(i)})
		}
		evs := r.Events()
		want := int(n)
		if want > max {
			want = max
		}
		if len(evs) != want || r.Retained() != want {
			return false
		}
		for i, e := range evs {
			if e.At != units.Time(int(n)-want+i) {
				return false
			}
		}
		if r.Total() != uint64(n) {
			return false
		}
		return r.Discarded() == r.Total()-uint64(r.Retained())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRingOrderAfterExactWraparound pins the sharpest edge cases by
// hand: the ring exactly full, one past full, and one full lap.
func TestRingOrderAfterExactWraparound(t *testing.T) {
	for _, n := range []int{3, 4, 6, 7} {
		r := NewRecorder(3)
		for i := 0; i < n; i++ {
			r.Record(Event{At: units.Time(i)})
		}
		evs := r.Events()
		if len(evs) != 3 {
			t.Fatalf("n=%d: retained %d", n, len(evs))
		}
		for i, e := range evs {
			if want := units.Time(n - 3 + i); e.At != want {
				t.Errorf("n=%d: evs[%d].At = %v, want %v", n, i, e.At, want)
			}
		}
		if got := r.Discarded(); got != uint64(n-3) {
			t.Errorf("n=%d: Discarded = %d, want %d", n, got, n-3)
		}
	}
}

// TestFilteredViewsOrderedAfterWraparound: Packet, OfKind and
// WriteText must all see the unrolled order, not the raw buffer
// layout.
func TestFilteredViewsOrderedAfterWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: units.Time(i), Kind: Inject, Packet: uint64(i % 2)})
	}
	got := r.Packet(0)
	if len(got) != 2 || got[0].At != 6 || got[1].At != 8 {
		t.Errorf("Packet(0) after wraparound = %v", got)
	}
	byKind := r.OfKind(Inject)
	for i := 1; i < len(byKind); i++ {
		if byKind[i].At <= byKind[i-1].At {
			t.Errorf("OfKind out of order: %v", byKind)
		}
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 || !strings.Contains(lines[0], "6") {
		t.Errorf("WriteText after wraparound:\n%s", sb.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 125 * units.Nanosecond, Kind: ITBDetect, Node: 4, Packet: 9, Detail: "x"})
	r.Record(Event{At: 250 * units.Nanosecond, Kind: Delivered, Node: 2})
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	var ev struct {
		AtPs   int64  `json:"at_ps"`
		Kind   string `json:"kind"`
		Node   int    `json:"node"`
		Packet uint64 `json:"packet"`
		Detail string `json:"detail"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Kind != "itb-detect" || ev.Node != 4 || ev.Packet != 9 || ev.Detail != "x" {
		t.Errorf("decoded event = %+v", ev)
	}
	if ev.AtPs != int64(125*units.Nanosecond) {
		t.Errorf("at_ps = %d", ev.AtPs)
	}
	// Zero-valued packet/detail fields are omitted on the second line.
	if strings.Contains(lines[1], "packet") || strings.Contains(lines[1], "detail") {
		t.Errorf("zero fields not omitted: %s", lines[1])
	}
}
