package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 1, Kind: Inject, Packet: 7})
	r.Record(Event{At: 2, Kind: Delivered, Packet: 7})
	r.Record(Event{At: 3, Kind: Inject, Packet: 8})
	if r.Total() != 3 || len(r.Events()) != 3 {
		t.Fatalf("total=%d retained=%d", r.Total(), len(r.Events()))
	}
	if got := r.Packet(7); len(got) != 2 || got[0].Kind != Inject || got[1].Kind != Delivered {
		t.Errorf("Packet(7) = %v", got)
	}
	if got := r.OfKind(Inject); len(got) != 2 {
		t.Errorf("OfKind(Inject) = %v", got)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: units.Time(i), Kind: Inject})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].At != 7 || evs[2].At != 9 {
		t.Errorf("ring kept %v..%v, want 7..9", evs[0].At, evs[2].At)
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d", r.Total())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Inject, HeaderOut, HeaderArrive, Delivered, Dropped,
		ITBDetect, ITBPending, ITBReinject, SendQueued, RecvToHost, Retransmit}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}

func TestEventStringAndWriteText(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{At: 125 * units.Nanosecond, Kind: ITBDetect, Node: 4, Packet: 9, Detail: "x"})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"itb-detect", "node=4", "pkt=9", "x", "125"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}

// Property: a ring recorder always retains the most recent min(n, max)
// events in order.
func TestRingProperty(t *testing.T) {
	f := func(maxRaw uint8, n uint8) bool {
		max := int(maxRaw%20) + 1
		r := NewRecorder(max)
		for i := 0; i < int(n); i++ {
			r.Record(Event{At: units.Time(i)})
		}
		evs := r.Events()
		want := int(n)
		if want > max {
			want = max
		}
		if len(evs) != want {
			return false
		}
		for i, e := range evs {
			if e.At != units.Time(int(n)-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
