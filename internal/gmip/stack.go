package gmip

import (
	"fmt"

	"repro/internal/gm"
	"repro/internal/topology"
	"repro/internal/units"
)

// IPPort is the GM port reserved for IP encapsulation on every host.
const IPPort = 255

// Stats counts stack activity.
type Stats struct {
	Sent         uint64
	Received     uint64
	BadDatagrams uint64
	EchoReplies  uint64
}

// Stack is one host's IP endpoint over GM.
type Stack struct {
	host  *gm.Host
	port  *gm.Port
	addr  Addr
	arp   map[Addr]topology.NodeID
	id    uint16
	stats Stats

	// OnDatagram receives non-ICMP datagrams addressed to this host.
	OnDatagram func(h Header, payload []byte, t units.Time)
	// OnEchoReply receives ICMP echo replies (see Ping).
	OnEchoReply func(seq uint16, t units.Time)
}

// NewStack opens the IP port on a GM host and assigns it an address,
// with the stock provisioning of 16 send and 64 receive tokens.
func NewStack(h *gm.Host, addr Addr) (*Stack, error) {
	return NewStackSized(h, addr, 16, 64)
}

// NewStackSized is NewStack with explicit token provisioning, for
// workloads (the RPC fan-out study) whose offered load exceeds what
// the stock ring sizes admit.
func NewStackSized(h *gm.Host, addr Addr, sendTokens, recvTokens int) (*Stack, error) {
	p, err := h.OpenPort(IPPort, sendTokens)
	if err != nil {
		return nil, err
	}
	s := &Stack{host: h, port: p, addr: addr, arp: make(map[Addr]topology.NodeID)}
	p.ProvideReceiveTokens(recvTokens)
	p.OnReceive = s.receive
	return s, nil
}

// Addr returns the stack's address.
func (s *Stack) Addr() Addr { return s.addr }

// Stats returns a snapshot of the counters.
func (s *Stack) Stats() Stats { return s.stats }

// AddNeighbor registers the GM host behind an IP address (the static
// stand-in for ARP on the single Myrinet segment).
func (s *Stack) AddNeighbor(a Addr, host topology.NodeID) {
	s.arp[a] = host
}

// SendDatagram transmits payload to dst with the given protocol.
func (s *Stack) SendDatagram(dst Addr, proto uint8, payload []byte) error {
	node, ok := s.arp[dst]
	if !ok {
		return fmt.Errorf("gmip: no neighbour entry for %s", dst)
	}
	s.id++
	buf := Encode(Header{
		TTL: 64, Protocol: proto, Src: s.addr, Dst: dst, ID: s.id,
	}, payload)
	if err := s.port.Send(node, IPPort, buf); err != nil {
		return err
	}
	s.stats.Sent++
	return nil
}

// Ping sends an ICMP-style echo request; the remote stack answers
// autonomously and OnEchoReply fires with the sequence number.
func (s *Stack) Ping(dst Addr, seq uint16) error {
	return s.SendDatagram(dst, ProtoICMP, encodeEcho(echoRequest, seq))
}

// receive handles a datagram landing on the IP port.
func (s *Stack) receive(_ topology.NodeID, _ uint8, buf []byte, t units.Time) {
	// Re-post the receive buffer first, the way the host-side IP
	// driver recycles its DMA ring: without this the stack goes deaf
	// after its initial 64 tokens, wedging any long-running consumer
	// (the RPC fan-out workload was the first to notice).
	defer s.port.ProvideReceiveTokens(1)
	h, payload, err := Decode(buf)
	if err != nil || h.Dst != s.addr {
		s.stats.BadDatagrams++
		return
	}
	s.stats.Received++
	if h.Protocol == ProtoICMP {
		kind, seq, ok := decodeEcho(payload)
		if !ok {
			s.stats.BadDatagrams++
			return
		}
		switch kind {
		case echoRequest:
			s.stats.EchoReplies++
			// Reply goes back to the request's source.
			if err := s.SendDatagram(h.Src, ProtoICMP, encodeEcho(echoReply, seq)); err != nil {
				s.stats.BadDatagrams++
			}
		case echoReply:
			if s.OnEchoReply != nil {
				s.OnEchoReply(seq, t)
			}
		}
		return
	}
	if s.OnDatagram != nil {
		s.OnDatagram(h, payload, t)
	}
}

// ICMP echo encoding: [type][0][seq:2].
const (
	echoRequest = 8
	echoReply   = 0
)

func encodeEcho(kind byte, seq uint16) []byte {
	return []byte{kind, 0, byte(seq >> 8), byte(seq)}
}

func decodeEcho(b []byte) (kind byte, seq uint16, ok bool) {
	if len(b) < 4 {
		return 0, 0, false
	}
	return b[0], uint16(b[2])<<8 | uint16(b[3]), true
}
