// Package gmip layers IP datagram service over GM, the way the
// paper's GM description lists TCP/IP among the interfaces "layered
// efficiently over GM". Datagrams travel as GM messages on a reserved
// GM port; the IPv4 header (with a real checksum) rides in the
// payload, and a static neighbour table plays the role of ARP on the
// single-segment Myrinet.
package gmip

import (
	"encoding/binary"
	"fmt"
)

// Addr is an IPv4 address.
type Addr [4]byte

// String renders dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IP protocol numbers used here.
const (
	ProtoICMP = 1
	ProtoUDP  = 17
)

// Header is the IPv4 header (no options).
type Header struct {
	TTL      uint8
	Protocol uint8
	Src, Dst Addr
	// ID tags the datagram (diagnostics; GM below handles
	// fragmentation, so IP-level fragments never occur here).
	ID uint16
}

// headerLen is the encoded size: a standard 20-byte IPv4 header.
const headerLen = 20

// Encode serialises the header and payload into one buffer, computing
// the header checksum.
func Encode(h Header, payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	buf[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(buf[2:], uint16(headerLen+len(payload)))
	binary.BigEndian.PutUint16(buf[4:], h.ID)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	copy(buf[12:16], h.Src[:])
	copy(buf[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(buf[10:], checksum(buf[:headerLen]))
	copy(buf[headerLen:], payload)
	return buf
}

// Decode parses and validates a datagram.
func Decode(buf []byte) (Header, []byte, error) {
	var h Header
	if len(buf) < headerLen {
		return h, nil, fmt.Errorf("gmip: datagram shorter than the IPv4 header (%d bytes)", len(buf))
	}
	if buf[0] != 0x45 {
		return h, nil, fmt.Errorf("gmip: unsupported version/IHL byte %#02x", buf[0])
	}
	total := int(binary.BigEndian.Uint16(buf[2:]))
	if total != len(buf) {
		return h, nil, fmt.Errorf("gmip: total length %d does not match datagram size %d", total, len(buf))
	}
	if checksum(buf[:headerLen]) != 0 {
		return h, nil, fmt.Errorf("gmip: header checksum mismatch")
	}
	h.ID = binary.BigEndian.Uint16(buf[4:])
	h.TTL = buf[8]
	h.Protocol = buf[9]
	copy(h.Src[:], buf[12:16])
	copy(h.Dst[:], buf[16:20])
	return h, buf[headerLen:], nil
}

// checksum is the Internet checksum (RFC 1071): summing a buffer that
// includes a correct checksum field yields zero.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}
