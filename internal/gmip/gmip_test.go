package gmip

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{TTL: 64, Protocol: ProtoUDP, Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2}, ID: 99}
	payload := []byte("datagram body")
	buf := Encode(h, payload)
	got, body, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header %+v != %+v", got, h)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("nil accepted")
	}
	buf := Encode(Header{TTL: 1, Protocol: 1}, []byte("x"))
	short := buf[:len(buf)-1]
	if _, _, err := Decode(short); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[12] ^= 0xFF // corrupt src address
	if _, _, err := Decode(bad); err == nil {
		t.Error("checksum corruption accepted")
	}
	vers := append([]byte(nil), buf...)
	vers[0] = 0x46
	if _, _, err := Decode(vers); err == nil {
		t.Error("bad version accepted")
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Known vector: the classic example from RFC 1071 material.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
	// Odd-length buffers pad with zero.
	if checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Error("odd-length checksum")
	}
}

// Property: Encode/Decode round-trips arbitrary datagrams.
func TestCodecProperty(t *testing.T) {
	f := func(ttl, proto uint8, src, dst [4]byte, id uint16, payload []byte) bool {
		if len(payload) > 40000 {
			payload = payload[:40000]
		}
		h := Header{TTL: ttl, Protocol: proto, Src: src, Dst: dst, ID: id}
		got, body, err := Decode(Encode(h, payload))
		return err == nil && got == h && bytes.Equal(body, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
