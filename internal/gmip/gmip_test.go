package gmip

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/units"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{TTL: 64, Protocol: ProtoUDP, Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2}, ID: 99}
	payload := []byte("datagram body")
	buf := Encode(h, payload)
	got, body, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header %+v != %+v", got, h)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("nil accepted")
	}
	buf := Encode(Header{TTL: 1, Protocol: 1}, []byte("x"))
	short := buf[:len(buf)-1]
	if _, _, err := Decode(short); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[12] ^= 0xFF // corrupt src address
	if _, _, err := Decode(bad); err == nil {
		t.Error("checksum corruption accepted")
	}
	vers := append([]byte(nil), buf...)
	vers[0] = 0x46
	if _, _, err := Decode(vers); err == nil {
		t.Error("bad version accepted")
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Known vector: the classic example from RFC 1071 material.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
	// Odd-length buffers pad with zero.
	if checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Error("odd-length checksum")
	}
}

// Property: Encode/Decode round-trips arbitrary datagrams.
func TestCodecProperty(t *testing.T) {
	f := func(ttl, proto uint8, src, dst [4]byte, id uint16, payload []byte) bool {
		if len(payload) > 40000 {
			payload = payload[:40000]
		}
		h := Header{TTL: ttl, Protocol: proto, Src: src, Dst: dst, ID: id}
		got, body, err := Decode(Encode(h, payload))
		return err == nil && got == h && bytes.Equal(body, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ipRig builds two stacks on the simulated testbed.
type ipRig struct {
	cl     *core.Cluster
	a, b   *Stack
	ipA    Addr
	ipB    Addr
	engRun func()
}

func newIPRig(t *testing.T) *ipRig {
	t.Helper()
	topo, nodes := topology.Testbed()
	cl, err := core.NewCluster(core.DefaultConfig(topo, routing.UpDownRouting, mcp.ITB))
	if err != nil {
		t.Fatal(err)
	}
	ipA, ipB := Addr{10, 0, 0, 1}, Addr{10, 0, 0, 2}
	a, err := NewStack(cl.Host(nodes.Host1), ipA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStack(cl.Host(nodes.Host2), ipB)
	if err != nil {
		t.Fatal(err)
	}
	a.AddNeighbor(ipB, nodes.Host2)
	b.AddNeighbor(ipA, nodes.Host1)
	return &ipRig{cl: cl, a: a, b: b, ipA: ipA, ipB: ipB, engRun: cl.Eng.Run}
}

func TestDatagramOverGM(t *testing.T) {
	r := newIPRig(t)
	var gotH Header
	var gotBody []byte
	r.b.OnDatagram = func(h Header, p []byte, _ units.Time) { gotH, gotBody = h, p }
	msg := bytes.Repeat([]byte{0xAB}, 9000) // spans 3 GM fragments
	if err := r.a.SendDatagram(r.ipB, ProtoUDP, msg); err != nil {
		t.Fatal(err)
	}
	r.engRun()
	if gotH.Protocol != ProtoUDP || gotH.Src != r.ipA || gotH.Dst != r.ipB {
		t.Errorf("header = %+v", gotH)
	}
	if !bytes.Equal(gotBody, msg) {
		t.Fatalf("payload corrupted: %d bytes", len(gotBody))
	}
	if r.a.Stats().Sent != 1 || r.b.Stats().Received != 1 {
		t.Errorf("stats: %+v / %+v", r.a.Stats(), r.b.Stats())
	}
}

func TestPingPong(t *testing.T) {
	r := newIPRig(t)
	var rtt units.Time
	var gotSeq uint16
	start := r.cl.Eng.Now()
	r.a.OnEchoReply = func(seq uint16, t units.Time) { gotSeq, rtt = seq, t-start }
	if err := r.a.Ping(r.ipB, 7); err != nil {
		t.Fatal(err)
	}
	r.engRun()
	if gotSeq != 7 {
		t.Fatalf("echo seq = %d, want 7", gotSeq)
	}
	if rtt < 10*units.Microsecond || rtt > 100*units.Microsecond {
		t.Errorf("ping RTT = %v, expected tens of microseconds", rtt)
	}
	if r.b.Stats().EchoReplies != 1 {
		t.Errorf("b stats: %+v", r.b.Stats())
	}
}

func TestSendToUnknownNeighbor(t *testing.T) {
	r := newIPRig(t)
	if err := r.a.SendDatagram(Addr{9, 9, 9, 9}, ProtoUDP, nil); err == nil {
		t.Error("send to unknown neighbour succeeded")
	}
}

func TestAddrString(t *testing.T) {
	if got := (Addr{10, 0, 0, 1}).String(); got != "10.0.0.1" {
		t.Errorf("String = %q", got)
	}
}

func TestDoubleStackOnOneHost(t *testing.T) {
	topo, nodes := topology.Testbed()
	cl, err := core.NewCluster(core.DefaultConfig(topo, routing.UpDownRouting, mcp.ITB))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStack(cl.Host(nodes.Host1), Addr{10, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStack(cl.Host(nodes.Host1), Addr{10, 0, 0, 9}); err == nil {
		t.Error("second stack on one host succeeded (port conflict expected)")
	}
}

func TestMisaddressedDatagramDropped(t *testing.T) {
	// b receives a datagram whose IP destination is not b's address:
	// it must be counted bad and not delivered.
	r := newIPRig(t)
	delivered := false
	r.b.OnDatagram = func(Header, []byte, units.Time) { delivered = true }
	// Poison a's neighbour table: IP says 10.0.0.9 but GM delivers to b.
	wrong := Addr{10, 0, 0, 9}
	r.a.AddNeighbor(wrong, r.b.host.Node())
	if err := r.a.SendDatagram(wrong, ProtoUDP, []byte("stray")); err != nil {
		t.Fatal(err)
	}
	r.engRun()
	if delivered {
		t.Error("misaddressed datagram delivered")
	}
	if r.b.Stats().BadDatagrams != 1 {
		t.Errorf("bad datagrams = %d, want 1", r.b.Stats().BadDatagrams)
	}
}
