// Stack tests that drive the full simulated testbed live in an
// external test package: internal/core (the cluster assembler) now
// imports gmip via the workload drivers, so an in-package test
// importing core would cycle.
package gmip_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/gmip"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/units"
)

// ipRig builds two stacks on the simulated testbed.
type ipRig struct {
	cl           *core.Cluster
	a, b         *gmip.Stack
	ipA          gmip.Addr
	ipB          gmip.Addr
	nodeA, nodeB topology.NodeID
	engRun       func()
}

func newIPRig(t *testing.T) *ipRig {
	t.Helper()
	topo, nodes := topology.Testbed()
	cl, err := core.NewCluster(core.DefaultConfig(topo, routing.UpDownRouting, mcp.ITB))
	if err != nil {
		t.Fatal(err)
	}
	ipA, ipB := gmip.Addr{10, 0, 0, 1}, gmip.Addr{10, 0, 0, 2}
	a, err := gmip.NewStack(cl.Host(nodes.Host1), ipA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gmip.NewStack(cl.Host(nodes.Host2), ipB)
	if err != nil {
		t.Fatal(err)
	}
	a.AddNeighbor(ipB, nodes.Host2)
	b.AddNeighbor(ipA, nodes.Host1)
	return &ipRig{cl: cl, a: a, b: b, ipA: ipA, ipB: ipB,
		nodeA: nodes.Host1, nodeB: nodes.Host2, engRun: cl.Eng.Run}
}

func TestDatagramOverGM(t *testing.T) {
	r := newIPRig(t)
	var gotH gmip.Header
	var gotBody []byte
	r.b.OnDatagram = func(h gmip.Header, p []byte, _ units.Time) { gotH, gotBody = h, p }
	msg := bytes.Repeat([]byte{0xAB}, 9000) // spans 3 GM fragments
	if err := r.a.SendDatagram(r.ipB, gmip.ProtoUDP, msg); err != nil {
		t.Fatal(err)
	}
	r.engRun()
	if gotH.Protocol != gmip.ProtoUDP || gotH.Src != r.ipA || gotH.Dst != r.ipB {
		t.Errorf("header = %+v", gotH)
	}
	if !bytes.Equal(gotBody, msg) {
		t.Fatalf("payload corrupted: %d bytes", len(gotBody))
	}
	if r.a.Stats().Sent != 1 || r.b.Stats().Received != 1 {
		t.Errorf("stats: %+v / %+v", r.a.Stats(), r.b.Stats())
	}
}

func TestPingPong(t *testing.T) {
	r := newIPRig(t)
	var rtt units.Time
	var gotSeq uint16
	start := r.cl.Eng.Now()
	r.a.OnEchoReply = func(seq uint16, t units.Time) { gotSeq, rtt = seq, t-start }
	if err := r.a.Ping(r.ipB, 7); err != nil {
		t.Fatal(err)
	}
	r.engRun()
	if gotSeq != 7 {
		t.Fatalf("echo seq = %d, want 7", gotSeq)
	}
	if rtt < 10*units.Microsecond || rtt > 100*units.Microsecond {
		t.Errorf("ping RTT = %v, expected tens of microseconds", rtt)
	}
	if r.b.Stats().EchoReplies != 1 {
		t.Errorf("b stats: %+v", r.b.Stats())
	}
}

func TestSendToUnknownNeighbor(t *testing.T) {
	r := newIPRig(t)
	if err := r.a.SendDatagram(gmip.Addr{9, 9, 9, 9}, gmip.ProtoUDP, nil); err == nil {
		t.Error("send to unknown neighbour succeeded")
	}
}

func TestAddrString(t *testing.T) {
	if got := (gmip.Addr{10, 0, 0, 1}).String(); got != "10.0.0.1" {
		t.Errorf("String = %q", got)
	}
}

func TestDoubleStackOnOneHost(t *testing.T) {
	topo, nodes := topology.Testbed()
	cl, err := core.NewCluster(core.DefaultConfig(topo, routing.UpDownRouting, mcp.ITB))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gmip.NewStack(cl.Host(nodes.Host1), gmip.Addr{10, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := gmip.NewStack(cl.Host(nodes.Host1), gmip.Addr{10, 0, 0, 9}); err == nil {
		t.Error("second stack on one host succeeded (port conflict expected)")
	}
}

func TestMisaddressedDatagramDropped(t *testing.T) {
	// b receives a datagram whose IP destination is not b's address:
	// it must be counted bad and not delivered.
	r := newIPRig(t)
	delivered := false
	r.b.OnDatagram = func(gmip.Header, []byte, units.Time) { delivered = true }
	// Poison a's neighbour table: IP says 10.0.0.9 but GM delivers to b.
	wrong := gmip.Addr{10, 0, 0, 9}
	r.a.AddNeighbor(wrong, r.nodeB)
	if err := r.a.SendDatagram(wrong, gmip.ProtoUDP, []byte("stray")); err != nil {
		t.Fatal(err)
	}
	r.engRun()
	if delivered {
		t.Error("misaddressed datagram delivered")
	}
	if r.b.Stats().BadDatagrams != 1 {
		t.Errorf("bad datagrams = %d, want 1", r.b.Stats().BadDatagrams)
	}
}

// TestStackStaysLiveBeyondInitialTokens exercises the receive-ring
// recycling: well over the initial 64 receive tokens must be
// deliverable on one stack.
func TestStackStaysLiveBeyondInitialTokens(t *testing.T) {
	r := newIPRig(t)
	got := 0
	r.b.OnDatagram = func(gmip.Header, []byte, units.Time) { got++ }
	const n = 200
	sent := 0
	var pump func()
	pump = func() {
		if sent == n {
			return
		}
		// One at a time, waiting out the ack RTT, so the sender's own
		// send tokens never run out: this test is about the receiver.
		if err := r.a.SendDatagram(r.ipB, gmip.ProtoUDP, []byte("tick")); err != nil {
			t.Errorf("send %d: %v", sent, err)
			return
		}
		sent++
		r.cl.Eng.Schedule(100*units.Microsecond, pump)
	}
	pump()
	r.engRun()
	if got != n {
		t.Errorf("delivered %d datagrams, want %d (receive ring not recycled?)", got, n)
	}
}
