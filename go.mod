module repro

go 1.22

// Matches the CI workflow's GO_VERSION; bump both together.
toolchain go1.22.0
