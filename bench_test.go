// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (and per extension experiment in DESIGN.md). Each
// benchmark runs the corresponding experiment end to end and reports
// the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. The benchmarks use reduced
// iteration counts and windows to stay fast; `cmd/itbsim` runs the
// full-size versions.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gm"
	"repro/internal/mapper"
	"repro/internal/mcp"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// BenchmarkFig7_CodeOverhead regenerates Figure 7: per-packet latency
// overhead of the ITB-modified MCP vs the original, across message
// sizes. Paper: ~125 ns average, <300 ns max.
func BenchmarkFig7_CodeOverhead(b *testing.B) {
	var last core.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig7(core.Fig7Config{
			Sizes:      []int{1, 64, 1024, 4096},
			Iterations: 30,
			Warmup:     3,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AvgOverhead.Nanoseconds(), "ns-overhead/pkt")
	b.ReportMetric(last.MaxOverhead.Nanoseconds(), "ns-overhead-max")
}

// BenchmarkFig8_ITBOverhead regenerates Figure 8: per-ITB latency cost
// over matched 5-crossing paths. Paper: ~1.3 us per ITB.
func BenchmarkFig8_ITBOverhead(b *testing.B) {
	var last core.Fig8Result
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig8(core.Fig8Config{
			Sizes:      []int{1, 64, 1024, 4096},
			Iterations: 30,
			Warmup:     3,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AvgOverhead.Nanoseconds(), "ns/ITB")
	b.ReportMetric(last.Rows[0].RelativePct, "pct-rel-short")
	b.ReportMetric(last.Rows[len(last.Rows)-1].RelativePct, "pct-rel-long")
}

// BenchmarkMCPCycleCosts regenerates the Section 5 in-text numbers:
// the firmware's component costs (detection ~275 ns, DMA programming
// ~200 ns in the authors' earlier estimates) and the measured
// end-to-end values.
func BenchmarkMCPCycleCosts(b *testing.B) {
	var last core.CostReport
	for i := 0; i < b.N; i++ {
		res, err := core.RunCostReport()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ITBDetect.Nanoseconds(), "ns-detect")
	b.ReportMetric(last.ProgramSendDMA.Nanoseconds(), "ns-program")
	b.ReportMetric(last.MeasuredPerPacket.Nanoseconds(), "ns-pkt-overhead")
	b.ReportMetric(last.MeasuredPerITB.Nanoseconds(), "ns-per-ITB")
}

// benchSweep runs a reduced throughput sweep.
func benchSweep(b *testing.B, alg routing.Algorithm) core.SweepResult {
	b.Helper()
	cfg := core.DefaultSweepConfig(alg, 16, 5)
	cfg.Loads = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	cfg.Window = 500 * units.Microsecond
	cfg.Warmup = 50 * units.Microsecond
	res, err := core.RunSweep(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkThroughputSweep_UpDown regenerates the up*/down* half of
// the X-thr extension experiment (accepted traffic vs offered load).
func BenchmarkThroughputSweep_UpDown(b *testing.B) {
	var last core.SweepResult
	for i := 0; i < b.N; i++ {
		last = benchSweep(b, routing.UpDownRouting)
	}
	b.ReportMetric(last.Throughput, "accepted-peak")
}

// BenchmarkThroughputSweep_ITB regenerates the ITB half. Paper (via
// the companion studies): throughput easily doubled on large nets.
func BenchmarkThroughputSweep_ITB(b *testing.B) {
	var last core.SweepResult
	for i := 0; i < b.N; i++ {
		last = benchSweep(b, routing.ITBRouting)
	}
	b.ReportMetric(last.Throughput, "accepted-peak")
	b.ReportMetric(last.RouteStats.AvgITBs, "avg-ITBs/route")
}

// BenchmarkLatencyUnderLoad regenerates X-lat-load: average message
// latency below saturation for both routings. The paper argues the
// ITB detour stays negligible at load because blocked output ports
// dominate.
func BenchmarkLatencyUnderLoad(b *testing.B) {
	var udLat, itbLat units.Time
	for i := 0; i < b.N; i++ {
		mk := func(alg routing.Algorithm) units.Time {
			cfg := core.DefaultSweepConfig(alg, 16, 5)
			cfg.Loads = []float64{0.3}
			cfg.Window = 500 * units.Microsecond
			cfg.Warmup = 50 * units.Microsecond
			res, err := core.RunSweep(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return res.Points[0].AvgLatency
		}
		udLat = mk(routing.UpDownRouting)
		itbLat = mk(routing.ITBRouting)
	}
	b.ReportMetric(udLat.Microseconds(), "us-UD")
	b.ReportMetric(itbLat.Microseconds(), "us-ITB")
}

// BenchmarkBufferPool regenerates X-bufpool: drop/retransmission
// behaviour of the proposed circular receive queue beyond saturation.
func BenchmarkBufferPool(b *testing.B) {
	var last core.BufPoolResult
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultBufPoolConfig()
		cfg.PoolSizes = []int{2, 8, 32}
		cfg.Window = 300 * units.Microsecond
		res, err := core.RunBufPool(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.Points[0].DropRate, "pct-drop-pool2")
	b.ReportMetric(100*last.Points[len(last.Points)-1].DropRate, "pct-drop-pool32")
}

// BenchmarkITBCount regenerates the per-path ITB scaling ablation:
// latency grows ~linearly, ~1.3 us per in-transit hop.
func BenchmarkITBCount(b *testing.B) {
	var last core.ITBCountResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunITBCount(4, 64, 10)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	rows := last.Rows
	b.ReportMetric(rows[len(rows)-1].ExtraPerITB.Nanoseconds(), "ns/ITB")
}

// BenchmarkAblationEarlyRecv quantifies the cut-through benefit of the
// Early Recv event vs store-and-forward detection.
func BenchmarkAblationEarlyRecv(b *testing.B) {
	var penalty units.Time
	for i := 0; i < b.N; i++ {
		res, err := core.RunAblations([]int{4096}, 10)
		if err != nil {
			b.Fatal(err)
		}
		penalty = res.Rows[0].Penalty
	}
	b.ReportMetric(penalty.Microseconds(), "us-penalty-4KB")
}

// BenchmarkAblationDispatch quantifies the paper's "avoid one
// dispatching cycle" optimisation in the re-injection path.
func BenchmarkAblationDispatch(b *testing.B) {
	var penalty units.Time
	for i := 0; i < b.N; i++ {
		res, err := core.RunAblations([]int{64}, 10)
		if err != nil {
			b.Fatal(err)
		}
		penalty = res.Rows[1].Penalty
	}
	b.ReportMetric(penalty.Nanoseconds(), "ns-penalty")
}

// BenchmarkScaling regenerates the network-size study: the ITB/UD
// throughput ratio grows with switch count toward the companion
// papers' 2-3x.
func BenchmarkScaling(b *testing.B) {
	var last core.ScalingResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunScaling([]int{8, 16}, 5, 400*units.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].Ratio, "ratio-8sw")
	b.ReportMetric(last.Rows[len(last.Rows)-1].Ratio, "ratio-16sw")
}

// BenchmarkPatternStudy regenerates the traffic-pattern sensitivity
// comparison.
func BenchmarkPatternStudy(b *testing.B) {
	var last core.PatternResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunPatternStudy(8, 7, 300*units.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.Ratio, "ratio-"+row.Pattern.String())
	}
}

// BenchmarkRootStudy regenerates the root-sensitivity comparison: the
// ITB mechanism makes routing insensitive to the spanning-tree root.
func BenchmarkRootStudy(b *testing.B) {
	var last core.RootStudyResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunRootStudy(16, 13, 300*units.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if row.Algorithm == routing.UpDownRouting {
			name := "UD-hops-best-root"
			if row.Label == "worst root" {
				name = "UD-hops-worst-root"
			}
			b.ReportMetric(row.AvgHops, name)
		}
	}
}

// BenchmarkAblationChunkSize regenerates the SDMA chunk-size ablation
// (Figure 4's send-chunk pipeline).
func BenchmarkAblationChunkSize(b *testing.B) {
	var last core.ChunkResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunChunkAblation(8192, []int{0, 256, 1024}, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].Latency.Microseconds(), "us-whole")
	b.ReportMetric(last.Rows[len(last.Rows)-1].Latency.Microseconds(), "us-1KB-chunks")
}

// BenchmarkModelFidelity regenerates the channel-release-policy
// ablation: the ITB/UD conclusion must hold under both the
// conservative and the progressive wormhole models.
func BenchmarkModelFidelity(b *testing.B) {
	var last core.FidelityResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunModelFidelity(16, 5, 300*units.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.RatioConservative, "ratio-conservative")
	b.ReportMetric(last.RatioProgressive, "ratio-progressive")
}

// BenchmarkSchemes regenerates the companion-paper [3] comparison:
// {BFS, DFS} orderings x {UD, ITB} routings.
func BenchmarkSchemes(b *testing.B) {
	var last core.SchemesResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunSchemes(16, 5, 300*units.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		alg := "UD"
		if row.Algorithm == routing.ITBRouting {
			alg = "ITB"
		}
		b.ReportMetric(row.Throughput, "thr-"+row.Orientation+"-"+alg)
	}
}

// BenchmarkAppStudy regenerates the distributed-application study
// (the paper's future-work experiment): bulk-synchronous stride
// exchange completion time under both routings.
func BenchmarkAppStudy(b *testing.B) {
	var last core.AppStudyResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunAppStudy(core.AppStudyConfig{
			Switches: 16, Seed: 9, Supersteps: 8, MsgBytes: 4096,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Speedup, "app-speedup")
	b.ReportMetric(last.Rows[0].PerStep.Microseconds(), "us-step-UD")
	b.ReportMetric(last.Rows[1].PerStep.Microseconds(), "us-step-ITB")
}

// speedupSweep is the workload for the serial-vs-parallel comparison:
// a full offered-load sweep whose points dispatch through the runner.
func speedupSweep(b *testing.B) {
	b.Helper()
	cfg := core.DefaultSweepConfig(routing.ITBRouting, 16, 5)
	cfg.Window = 400 * units.Microsecond
	cfg.Warmup = 50 * units.Microsecond
	if _, err := core.RunSweep(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepSerial pins the experiment runner to one worker: the
// pre-runner serial baseline.
func BenchmarkSweepSerial(b *testing.B) {
	runner.SetWorkers(1)
	defer runner.SetWorkers(0)
	for i := 0; i < b.N; i++ {
		speedupSweep(b)
	}
}

// BenchmarkSweepParallel shards the same sweep across all cores
// (runtime.NumCPU workers). The output is byte-identical to the
// serial run — see internal/core/parallel_test.go — only the wall
// clock changes; compare ns/op against BenchmarkSweepSerial for the
// speedup.
func BenchmarkSweepParallel(b *testing.B) {
	runner.SetWorkers(0) // runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		speedupSweep(b)
	}
}

// BenchmarkMapperDiscovery measures the mapping protocol: probes and
// wall time to discover a 16-switch irregular network.
func BenchmarkMapperDiscovery(b *testing.B) {
	topo, err := topology.Generate(topology.DefaultGenConfig(16, 3))
	if err != nil {
		b.Fatal(err)
	}
	var probes int
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net := fabric.New(eng, topo, fabric.DefaultParams())
		var mine *mcp.MCP
		for _, h := range topo.Hosts() {
			m := mcp.New(net, h, mcp.DefaultConfig(mcp.ITB))
			if mine == nil {
				mine = m
			}
		}
		res, err := mapper.New(mine, mapper.DefaultConfig()).Discover()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Matches(topo); err != nil {
			b.Fatal(err)
		}
		probes = res.Probes
	}
	b.ReportMetric(float64(probes), "probes")
}

// BenchmarkAllsizePingPong measures the simulator's own speed driving
// the gm_allsize workload (simulated ping-pongs per second of real
// time).
func BenchmarkAllsizePingPong(b *testing.B) {
	topo, nodes := topology.Testbed()
	cl, err := core.NewCluster(core.DefaultConfig(topo, routing.UpDownRouting, mcp.ITB))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	_, err = gm.Allsize(cl.Eng, cl.Host(nodes.Host1), cl.Host(nodes.Host2), gm.AllsizeConfig{
		Sizes:      []int{64},
		Iterations: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRouteTableBuild measures mapper speed: full all-pairs ITB
// route computation on a 32-switch irregular network.
func BenchmarkRouteTableBuild(b *testing.B) {
	topo, err := topology.Generate(topology.DefaultGenConfig(32, 7))
	if err != nil {
		b.Fatal(err)
	}
	ud := topology.BuildUpDown(topo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.BuildTable(topo, ud, routing.ITBRouting); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7MetricsOff / BenchmarkFig7MetricsOn certify the
// zero-cost-when-disabled contract of internal/metrics: the hot paths
// (fabric delivery, MCP queueing) call their instruments
// unconditionally, so the disabled case must cost only nil checks.
// Compare the two to see the full price of enabling collection.
func BenchmarkFig7MetricsOff(b *testing.B) {
	benchFig7Metrics(b, false)
}

func BenchmarkFig7MetricsOn(b *testing.B) {
	benchFig7Metrics(b, true)
}

func benchFig7Metrics(b *testing.B, enabled bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := core.Fig7Config{Sizes: []int{1, 64, 1024, 4096}, Iterations: 30, Warmup: 3}
		if enabled {
			cfg.Metrics = metrics.NewRegistry()
		}
		if _, err := core.RunFig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryOff / BenchmarkRecoveryOn certify the
// zero-cost-when-disabled contract of internal/recovery: fault
// campaigns with Recovery=nil run exactly the pre-recovery code path
// (GM reliability only), so its allocation count is pinned by the
// bench gate. The On variant prices the full self-healing protocol —
// heartbeat probes, verification, epoch republish — for comparison.
func BenchmarkRecoveryOff(b *testing.B) {
	benchRecovery(b, false)
}

func BenchmarkRecoveryOn(b *testing.B) {
	benchRecovery(b, true)
}

func benchRecovery(b *testing.B, enabled bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultFaultStudyConfig(routing.ITBRouting, 8, 3)
		cfg.Campaigns = 2
		cfg.FaultEvents = 4
		cfg.Horizon = 500 * units.Microsecond
		cfg.MessageSize = 256
		if !enabled {
			cfg.Recovery = nil
		}
		if _, err := core.RunFaultStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTableBuild1024 pins the struct-of-arrays compact
// table build at the scale the engine study runs at: a 1024-host
// fat-tree, all-pairs routes for every registered engine, validated
// and certified deadlock free. This is the budget ISSUE 6's "4k-host
// tables build within the benchdiff gate" claim rests on — the 4096
// cells in the property suite are ~4x this work per engine.
func BenchmarkEngineTableBuild1024(b *testing.B) {
	topo, err := topology.FatTree(topology.DefaultFatTreeConfig(1024))
	if err != nil {
		b.Fatal(err)
	}
	engines := routing.Engines()
	b.ReportAllocs()
	b.ResetTimer()
	var bytesTotal int
	for i := 0; i < b.N; i++ {
		bytesTotal = 0
		for _, eng := range engines {
			ct, err := eng.BuildCompact(topo, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := ct.Validate(); err != nil {
				b.Fatal(err)
			}
			if err := ct.CheckDeadlockFree(); err != nil {
				b.Fatal(err)
			}
			bytesTotal += ct.SizeBytes()
		}
	}
	b.ReportMetric(float64(bytesTotal), "table-bytes")
}

// BenchmarkLoadStudySmall runs a trimmed open-loop load study — one
// fat-tree preset, two engines, the uniform plan, the ring collective
// and the RPC mesh at a single offered load — end to end through the
// parallel runner. It is the bench-gate guard for the workload plane:
// a regression in the arrival generators, schedule compilation or the
// closed-loop drivers shows up here before it slows `itbsim -exp
// load` by minutes.
func BenchmarkLoadStudySmall(b *testing.B) {
	cfg := core.DefaultLoadStudyConfig(5)
	cfg.Presets = []string{"fattree-16"}
	cfg.Engines = []string{"updown-itb", "minimal-escape"}
	cfg.Patterns = []string{"uniform", "allreduce", "rpc"}
	cfg.Loads = []float64{0.3}
	cfg.Window = 150 * units.Microsecond
	cfg.Warmup = 30 * units.Microsecond
	cfg.VectorLen = 64
	b.ReportAllocs()
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := core.RunLoadStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "cells")
}

// BenchmarkLoadStudyPartitioned runs the same trimmed study's open-loop
// cell under the PDES model on 4 lanes: per-partition engines over the
// fixed topology decomposition, conservative windows, cross-cut relay
// mail. It is the bench-gate guard for the partitioned runner — window
// barrier overhead, mail staging and the relay admission path all land
// here. (On a single-core CI runner the lanes serialize; the guard
// pins overhead, not speedup, which EXPERIMENTS.md reports separately.)
func BenchmarkLoadStudyPartitioned(b *testing.B) {
	cfg := core.DefaultLoadStudyConfig(5)
	cfg.Presets = []string{"fattree-16"}
	cfg.Engines = []string{"updown-itb", "minimal-escape"}
	cfg.Patterns = []string{"uniform"}
	cfg.Loads = []float64{0.3}
	cfg.Window = 150 * units.Microsecond
	cfg.Warmup = 30 * units.Microsecond
	cfg.Partitions = 4
	b.ReportAllocs()
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := core.RunLoadStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "cells")
}

// BenchmarkFig7Lanes1 / BenchmarkFig7Lanes2 price the virtual-channel
// storage layer on the paper's Figure 7 ping-pong: the same testbed
// allsize exchange with the fabric sized to one lane (the pre-VC
// layout, byte-identical channel indexing) and to two lanes (doubled
// flit-buffer storage, lane-qualified arbitration). Routes stay on
// lane 0 in both, so the pair isolates the cost of carrying the lane
// dimension itself; the bench gate pins both ns/op and allocs/op, and
// the fabric AllocsPerRun tests pin the hot path at exactly zero.
func BenchmarkFig7Lanes1(b *testing.B) {
	benchFig7Lanes(b, 1)
}

func BenchmarkFig7Lanes2(b *testing.B) {
	benchFig7Lanes(b, 2)
}

func benchFig7Lanes(b *testing.B, lanes int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo, nodes := topology.Testbed()
		ccfg := core.DefaultConfig(topo, routing.UpDownRouting, mcp.ITB)
		ccfg.Fabric.Lanes = lanes
		cl, err := core.NewCluster(ccfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gm.Allsize(cl.Eng, cl.Host(nodes.Host1), cl.Host(nodes.Host2), gm.AllsizeConfig{
			Sizes:      []int{1, 64, 1024, 4096},
			Iterations: 30,
			Warmup:     3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVCAblationSweep runs a trimmed virtual-channel ablation —
// the Dragonfly preset, all three arms (itb / vc / itb+vc) at one and
// two lanes — end to end through the parallel runner. It is the
// bench-gate guard for the VC route search (the layered Dijkstra over
// (switch, phase, lane) states), the lane-aware deadlock certifier and
// the laned fabric under real traffic.
func BenchmarkVCAblationSweep(b *testing.B) {
	cfg := core.DefaultVCStudyConfig(5)
	cfg.Presets = []string{"dragonfly-72"}
	cfg.LaneCounts = []int{1, 2}
	cfg.Window = 100 * units.Microsecond
	cfg.Warmup = 20 * units.Microsecond
	b.ReportAllocs()
	b.ResetTimer()
	var itbs uint64
	for i := 0; i < b.N; i++ {
		res, err := core.RunVCStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		itbs = 0
		for _, r := range res.Rows {
			itbs += uint64(r.ITBs)
		}
	}
	b.ReportMetric(float64(itbs), "itbs")
}
