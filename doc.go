// Package repro reproduces "A First Implementation of In-Transit
// Buffers on Myrinet GM Software" (Coll, Flich, Malumbres, López,
// Duato, Mora — IPPS 2001) as a cycle-approximate simulation of the
// full stack: wormhole Myrinet fabric, LANai NIC hardware, the MCP
// firmware in original and ITB-modified builds, the mapper's route
// computation, and the GM host layer.
//
// The public entry points live in internal/core (cluster assembly and
// every experiment of the evaluation); the runnable tools are under
// cmd/ and the worked examples under examples/. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package repro
