// Quickstart: build the paper's three-host testbed, send a message
// from host 1 to host 2 through the simulated Myrinet, and measure the
// per-packet overhead the ITB firmware adds (the Figure 7 experiment
// in miniature).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/units"
)

func main() {
	// 1. The testbed of the paper's Figure 6: two 8-port switches,
	// host 1, host 2, and an in-transit host.
	topo, nodes := topology.Testbed()

	// 2. Assemble a cluster: up*/down* routes, ITB-modified MCP
	// firmware on every NIC, GM host layer on top.
	cl, err := core.NewCluster(core.DefaultConfig(topo, routing.UpDownRouting, mcp.ITB))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Send one message and watch it arrive.
	payload := []byte("hello, Myrinet")
	cl.Host(nodes.Host2).OnMessage = func(src topology.NodeID, p []byte, t units.Time) {
		fmt.Printf("host2 received %q from host %d at t=%s\n", p, src, t)
	}
	if err := cl.Host(nodes.Host1).Send(nodes.Host2, payload); err != nil {
		log.Fatal(err)
	}
	cl.Eng.Run()

	// 4. The headline measurement: how much latency does the ITB
	// support code add to a normal packet?
	res, err := core.RunFig7(core.Fig7Config{
		Sizes:      []int{1, 64, 1024, 4096},
		Iterations: 50,
		Warmup:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	res.WriteTable(os.Stdout)
	fmt.Printf("\nITB support costs %s per packet on average (paper: ~125 ns)\n", res.AvgOverhead)
}
