// IP over GM: the paper's GM description lists TCP/IP among the
// interfaces layered over GM (and Myrinet reserves a packet type for
// IP). This example assigns IPv4 addresses to every host of an
// irregular cluster, then pings across it — every datagram rides GM's
// reliable delivery over ITB-routed wormhole paths.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gmip"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/units"
)

func main() {
	topo, err := topology.Generate(topology.DefaultGenConfig(8, 23))
	if err != nil {
		log.Fatal(err)
	}
	cl, err := core.NewCluster(core.DefaultConfig(topo, routing.ITBRouting, mcp.ITB))
	if err != nil {
		log.Fatal(err)
	}
	// One stack per host, addresses 10.0.0.1...; full neighbour tables
	// (the mapper's host list would feed this in a real deployment).
	hosts := topo.Hosts()
	stacks := make([]*gmip.Stack, len(hosts))
	addrs := make([]gmip.Addr, len(hosts))
	for i, h := range hosts {
		addrs[i] = gmip.Addr{10, 0, byte(i >> 8), byte(i + 1)}
		s, err := gmip.NewStack(cl.Host(h), addrs[i])
		if err != nil {
			log.Fatal(err)
		}
		stacks[i] = s
	}
	for i := range stacks {
		for j, h := range hosts {
			if i != j {
				stacks[i].AddNeighbor(addrs[j], h)
			}
		}
	}

	// Ping from host 0 to a handful of peers, one at a time.
	fmt.Printf("PING across %d hosts on an 8-switch irregular Myrinet (ITB routing)\n", len(hosts))
	for _, j := range []int{1, 7, 15, 31} {
		if j >= len(hosts) {
			continue
		}
		var rtt units.Time
		start := cl.Eng.Now()
		stacks[0].OnEchoReply = func(seq uint16, t units.Time) { rtt = t - start }
		if err := stacks[0].Ping(addrs[j], uint16(j)); err != nil {
			log.Fatal(err)
		}
		cl.Eng.Run()
		if rtt == 0 {
			log.Fatalf("no echo reply from %s", addrs[j])
		}
		fmt.Printf("  64 bytes from %-12s icmp_seq=%d time=%s\n", addrs[j], j, rtt)
	}
	fmt.Println("\nEvery datagram carried an IPv4 header (checksummed) inside a GM")
	fmt.Println("message, segmented at the GM MTU and delivered reliably in order.")
}
