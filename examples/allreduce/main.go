// Allreduce: the kind of parallel-computing workload COWs were built
// for (the paper's motivation). Every host holds a vector; a ring
// allreduce circulates partial sums through GM ports until every host
// has the global sum. The collective's critical path is chained
// point-to-point latency, so routing quality shows directly in the
// completion time: we run the same collective under up*/down* and
// under ITB routing on an irregular 16-switch cluster.
//
// The collective itself and the background load both come from
// internal/workload — this example is the thin narrative wrapper; the
// same drivers power `itbsim -exp load`.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/workload"
)

const vectorLen = 1024 // float-sized words per host

func main() {
	topo, err := topology.Generate(topology.DefaultGenConfig(16, 9))
	if err != nil {
		log.Fatal(err)
	}
	for _, background := range []bool{false, true} {
		label := "idle network"
		if background {
			label = "with background traffic (uniform, 0.06 load)"
		}
		fmt.Printf("%s:\n", label)
		var times [2]units.Time
		for i, alg := range []routing.Algorithm{routing.UpDownRouting, routing.ITBRouting} {
			took, sum, err := runAllreduce(topo, alg, background)
			if err != nil {
				log.Fatal(err)
			}
			times[i] = took
			fmt.Printf("  %-16s allreduce of %d words over %d hosts: %12s (checksum %d)\n",
				alg, vectorLen, len(topo.Hosts()), took, sum)
		}
		fmt.Printf("  speedup from ITBs: %.2fx\n\n", float64(times[0])/float64(times[1]))
	}
	fmt.Println("On an idle network the collective sees no benefit (and a tiny ITB")
	fmt.Println("detour penalty), exactly as the paper predicts; once the network")
	fmt.Println("carries load, minimal balanced routes shorten the chained critical")
	fmt.Println("path on every ring step.")
}

// runAllreduce times workload.StartAllreduce's ring collective on a
// fresh cluster. With background set, an open-loop uniform plan from
// the same workload package injects 512-byte messages at 0.06 offered
// load around the collective until it completes.
func runAllreduce(topo *topology.Topology, alg routing.Algorithm, background bool) (units.Time, uint64, error) {
	cfg := core.DefaultConfig(topo, alg, mcp.ITB)
	if background {
		// Loaded ITB networks need the paper's proposed buffer pool
		// (section 4); give both routings the same pool for fairness.
		// GM's reliability stays on, so any overflow flush is
		// retransmitted and the collective cannot lose its token.
		cfg.MCP.BufferPool = true
		cfg.MCP.RecvBuffers = 64
	}
	cl, err := core.NewCluster(cfg)
	if err != nil {
		return 0, 0, err
	}
	hosts := topo.Hosts()
	ccfg := workload.DefaultCollectiveConfig()
	ccfg.VectorLen = vectorLen
	coll, err := workload.StartAllreduce(cl.Eng, hosts, cl.Host, ccfg)
	if err != nil {
		return 0, 0, err
	}

	// Background load: a pre-compiled open-loop schedule, replayed
	// until the collective lands. The plan horizon is deliberately
	// generous; injection stops the moment the collective is done, so
	// an early finish never pays for the unused tail.
	if background {
		sizes, err := workload.FixedSize(512)
		if err != nil {
			return 0, 0, err
		}
		flows, err := workload.Plan(topo, workload.PlanConfig{
			Scenario:      workload.ScenarioUniform,
			Load:          0.06,
			Arrival:       workload.ArrivalConfig{Kind: workload.Poisson},
			Sizes:         sizes,
			Seed:          77,
			Horizon:       200 * units.Millisecond,
			LinkBandwidth: cl.Net.Params().LinkBandwidth,
		})
		if err != nil {
			return 0, 0, err
		}
		for _, f := range flows {
			f := f
			cl.Eng.Schedule(f.Start, func() {
				if coll.Done() {
					return
				}
				if err := cl.Host(f.Src).Send(f.Dst, make([]byte, f.Bytes)); err != nil {
					panic(err)
				}
			})
		}
	}

	cl.Eng.Run()
	if !coll.Done() {
		return 0, 0, fmt.Errorf("allreduce did not complete")
	}
	if got, want := coll.Checksum(), workload.ExpectedChecksum(len(hosts), vectorLen); got != want {
		return 0, 0, fmt.Errorf("allreduce checksum %d, want %d", got, want)
	}
	return coll.DoneAt(), coll.Checksum(), nil
}
