// Allreduce: the kind of parallel-computing workload COWs were built
// for (the paper's motivation). Every host holds a vector; a ring
// allreduce circulates partial sums through GM ports until every host
// has the global sum. The collective's critical path is chained
// point-to-point latency, so routing quality shows directly in the
// completion time: we run the same collective under up*/down* and
// under ITB routing on an irregular 16-switch cluster.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gm"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/units"
)

const vectorLen = 1024 // float-sized words per host

func main() {
	topo, err := topology.Generate(topology.DefaultGenConfig(16, 9))
	if err != nil {
		log.Fatal(err)
	}
	for _, background := range []bool{false, true} {
		label := "idle network"
		if background {
			label = "with background traffic (uniform, 0.06 load)"
		}
		fmt.Printf("%s:\n", label)
		var times [2]units.Time
		for i, alg := range []routing.Algorithm{routing.UpDownRouting, routing.ITBRouting} {
			took, sum, err := runAllreduce(topo, alg, background)
			if err != nil {
				log.Fatal(err)
			}
			times[i] = took
			fmt.Printf("  %-16s allreduce of %d words over %d hosts: %12s (checksum %d)\n",
				alg, vectorLen, len(topo.Hosts()), took, sum)
		}
		fmt.Printf("  speedup from ITBs: %.2fx\n\n", float64(times[0])/float64(times[1]))
	}
	fmt.Println("On an idle network the collective sees no benefit (and a tiny ITB")
	fmt.Println("detour penalty), exactly as the paper predicts; once the network")
	fmt.Println("carries load, minimal balanced routes shorten the chained critical")
	fmt.Println("path on every ring step.")
}

// runAllreduce executes a reduce-scatter-free, simple ring allreduce:
// the token (the accumulating vector) circles the ring twice — once to
// accumulate, once to broadcast — and we time until the last host has
// the result. With background set, every host also injects uniform
// random traffic while the collective runs.
func runAllreduce(topo *topology.Topology, alg routing.Algorithm, background bool) (units.Time, uint64, error) {
	cfg := core.DefaultConfig(topo, alg, mcp.ITB)
	if background {
		// Loaded ITB networks need the paper's proposed buffer pool
		// (section 4); give both routings the same pool for fairness.
		// GM's reliability stays on, so any overflow flush is
		// retransmitted and the collective cannot lose its token.
		cfg.MCP.BufferPool = true
		cfg.MCP.RecvBuffers = 64
	}
	cl, err := core.NewCluster(cfg)
	if err != nil {
		return 0, 0, err
	}
	hosts := topo.Hosts()
	n := len(hosts)
	ports := make([]*gm.Port, n)
	for i, h := range hosts {
		p, err := cl.Host(h).OpenPort(1, 2)
		if err != nil {
			return 0, 0, err
		}
		p.ProvideReceiveTokens(4)
		ports[i] = p
	}
	// Each host's local contribution: rank-dependent words.
	local := func(rank int) []uint32 {
		v := make([]uint32, vectorLen)
		for j := range v {
			v[j] = uint32(rank + j)
		}
		return v
	}
	encode := func(v []uint32) []byte {
		buf := make([]byte, 4*len(v))
		for j, x := range v {
			binary.BigEndian.PutUint32(buf[4*j:], x)
		}
		return buf
	}
	decode := func(b []byte) []uint32 {
		v := make([]uint32, len(b)/4)
		for j := range v {
			v[j] = binary.BigEndian.Uint32(b[4*j:])
		}
		return v
	}

	var doneAt units.Time
	var checksum uint64
	for i := range hosts {
		i := i
		ports[i].OnReceive = func(_ topology.NodeID, _ uint8, payload []byte, t units.Time) {
			hop := int(payload[0])
			vec := decode(payload[1:])
			if hop < n-1 {
				// Accumulation phase: add our contribution, pass on.
				for j, x := range local(i) {
					vec[j] += x
				}
			}
			hop++
			if hop == 2*n-2 {
				// The vector has accumulated everywhere and been
				// re-broadcast around the ring: done.
				doneAt = t
				for _, x := range vec {
					checksum += uint64(x)
				}
				return
			}
			next := (i + 1) % n
			out := append([]byte{byte(hop)}, encode(vec)...)
			if err := ports[i].Send(hosts[next], 1, out); err != nil {
				panic(err)
			}
		}
	}
	// Background load: every host injects uniform random 512-byte
	// messages while the collective is in flight.
	if background {
		gen, err := traffic.NewGenerator(topo, traffic.Config{
			Pattern: traffic.Uniform, MessageSize: 512, Seed: 77,
		})
		if err != nil {
			return 0, 0, err
		}
		rng := rand.New(rand.NewSource(78))
		mean := traffic.MeanInterarrival(0.06, 512, cl.Net.Params().LinkBandwidth)
		for _, h := range hosts {
			h := h
			var tick func()
			tick = func() {
				if doneAt != 0 {
					return // collective finished; stop injecting
				}
				msg := gen.NextFrom(h)
				if err := cl.Host(h).Send(msg.Dst, make([]byte, msg.Size)); err != nil {
					panic(err)
				}
				cl.Eng.Schedule(units.Time(rng.Int63n(int64(2*mean)))+1, tick)
			}
			cl.Eng.Schedule(units.Time(rng.Int63n(int64(mean)))+1, tick)
		}
	}

	// Rank 0 starts the token with its own vector, hop counter 0.
	start := append([]byte{0}, encode(local(0))...)
	if err := ports[0].Send(hosts[1], 1, start); err != nil {
		return 0, 0, err
	}
	cl.Eng.Run()
	if doneAt == 0 {
		return 0, 0, fmt.Errorf("allreduce did not complete")
	}
	return doneAt, checksum, nil
}
