// Mapping: GM's network discovery, run as a real protocol. A mapper
// host knows nothing but its own NIC; it emits scout packets with
// trial source routes into the simulated fabric, remote MCPs answer
// probes with their identity, and routes that loop home pin the
// switch wiring. The discovered map then feeds the route computation
// — the full "network mapping and route computation" pipeline the
// paper's GM description lists.
package main

import (
	"fmt"
	"log"

	"repro/internal/fabric"
	"repro/internal/mapper"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// A 12-switch irregular cluster the mapper has never seen.
	topo, err := topology.Generate(topology.DefaultGenConfig(12, 42))
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.New(eng, topo, fabric.DefaultParams())
	var mine *mcp.MCP
	for _, h := range topo.Hosts() {
		m := mcp.New(net, h, mcp.DefaultConfig(mcp.ITB))
		if mine == nil {
			mine = m
		}
	}

	res, err := mapper.New(mine, mapper.DefaultConfig()).Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d switches, %d hosts, %d cables with %d scout packets (%s of network time)\n",
		res.Switches, len(res.Hosts), len(res.Cables), res.Probes, eng.Now())
	if err := res.Matches(topo); err != nil {
		log.Fatalf("map does not match the wiring: %v", err)
	}
	fmt.Println("map verified against the physical wiring")

	// Compute ITB routes on the reconstruction, as the paper's
	// modified mapper does.
	rebuilt, _, err := res.BuildTopology(8)
	if err != nil {
		log.Fatal(err)
	}
	ud := topology.BuildUpDown(rebuilt)
	tbl, err := routing.BuildTable(rebuilt, ud, routing.ITBRouting)
	if err != nil {
		log.Fatal(err)
	}
	if err := routing.CheckDeadlockFree(tbl.Routes()); err != nil {
		log.Fatal(err)
	}
	an := routing.Analyze(rebuilt, ud, tbl)
	fmt.Printf("computed %d ITB routes on the discovered map: %.0f%% minimal, avg %.2f ITBs/route, deadlock free\n",
		an.Routes, 100*an.MinimalFraction, an.AvgITBs)
}
