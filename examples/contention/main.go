// Contention relief: wormhole switching without virtual channels means
// one blocked packet stalls every channel it holds, cascading backward
// through the network. Ejecting packets into in-transit buffers frees
// those channels.
//
// The example builds the Figure 1 network, drives a hotspot workload
// that congests the spanning-tree root under up*/down* routing, and
// compares delivered traffic and latency against ITB routing.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/units"
)

func main() {
	fmt.Println("Hotspot workload on a 16-switch irregular network, offered load 0.6")
	fmt.Println()
	for _, alg := range []routing.Algorithm{routing.UpDownRouting, routing.ITBRouting} {
		cfg := core.DefaultSweepConfig(alg, 16, 11)
		cfg.Pattern = traffic.HotSpot
		cfg.HotFraction = 0.3
		cfg.Loads = []float64{0.6}
		cfg.Window = 500 * units.Microsecond
		cfg.Warmup = 50 * units.Microsecond
		res, err := core.RunSweep(cfg)
		if err != nil {
			log.Fatal(err)
		}
		p := res.Points[0]
		fmt.Printf("%-12s accepted %.3f of offered %.3f, avg latency %s, p99 %s\n",
			alg, p.Accepted, p.Offered, p.AvgLatency, p.P99Latency)
		fmt.Printf("%-12s routes: avg %.2f hops, %.0f%% cross the root, channel-load CV %.2f\n",
			"", res.RouteStats.AvgLinkHops, 100*res.RouteStats.RootFraction, res.RouteStats.LinkLoadCV)
	}
	fmt.Println()
	fmt.Println("ITB routing avoids the root bottleneck (lower root fraction, lower")
	fmt.Println("channel-load CV) and ejection/re-injection releases held channels,")
	fmt.Println("so it sustains more traffic at lower latency.")
}
