// Reliability: the paper's proposed buffer pool flushes packets when
// the circular receive queue overflows, and relies on GM's reliable
// delivery (go-back-N with cumulative acks) to retransmit them.
//
// The example overloads one receiver with a hotspot burst through a
// deliberately tiny pool, shows drops and recovery, then repeats with
// a realistic pool where flushes become "very unusual" (the paper's
// words for NICs with megabytes of memory).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/units"
)

func main() {
	cfg := core.DefaultBufPoolConfig()
	cfg.PoolSizes = []int{2, 8, 64}
	cfg.Window = 500 * units.Microsecond
	res, err := core.RunBufPool(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Hotspot overload through the proposed circular receive queue:")
	fmt.Println()
	for _, p := range res.Points {
		fmt.Printf("pool=%2d buffers: %5d sent, %5d delivered, %4d flushed (%.1f%%), %4d retransmissions\n",
			p.PoolSize, p.Sent, p.Delivered, p.PoolDrops, 100*p.DropRate, p.Retransmits)
	}
	fmt.Println()
	fmt.Println("Every flushed packet was recovered by GM's go-back-N retransmission.")
	fmt.Println("With a realistically sized pool, flushes disappear, as the paper")
	fmt.Println("argues for NICs with megabytes of memory. (Remaining retransmissions")
	fmt.Println("are go-back-N timeouts under saturation queueing, not losses.)")
}
