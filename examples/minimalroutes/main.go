// Minimal routes: the paper's Figure 1 scenario. On the 7-switch
// irregular network, the minimal path from switch 4 to switch 1 (via
// switch 6) is forbidden by up*/down* — it needs an up hop after a
// down hop — so stock routing takes a longer path through the tree.
// An in-transit buffer at a host of switch 6 splits the minimal path
// into two legal sub-paths.
//
// The example prints both routes, proves the route sets deadlock free,
// and then actually races the two strategies on the simulated network.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/units"
)

func main() {
	topo, f := topology.Figure1()
	ud := topology.BuildUpDownFrom(topo, f.Switches[0])
	src, dst := f.Hosts[4], f.Hosts[1]

	for _, alg := range []routing.Algorithm{routing.UpDownRouting, routing.ITBRouting} {
		tbl, err := routing.BuildTable(topo, ud, alg)
		if err != nil {
			log.Fatal(err)
		}
		r, _ := tbl.Lookup(src, dst)
		fmt.Printf("%-18s %s\n", alg.String()+":", r)
		if err := routing.CheckDeadlockFree(tbl.Routes()); err != nil {
			log.Fatalf("%v routes not deadlock free: %v", alg, err)
		}
	}

	// Race the two strategies end to end: one-way message latency from
	// the host at switch 4 to the host at switch 1.
	fmt.Println()
	for _, alg := range []routing.Algorithm{routing.UpDownRouting, routing.ITBRouting} {
		cfg := core.DefaultConfig(topo, alg, mcp.ITB)
		root := f.Switches[0]
		cfg.Root = &root
		cl, err := core.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var got units.Time
		cl.Host(dst).OnMessage = func(_ topology.NodeID, _ []byte, t units.Time) { got = t }
		if err := cl.Host(src).Send(dst, make([]byte, 1024)); err != nil {
			log.Fatal(err)
		}
		cl.Eng.Run()
		fmt.Printf("%-18s one-way latency for 1KB host@sw4 -> host@sw1: %s\n", alg.String()+":", got)
	}
	fmt.Println("\nOn an unloaded network the ITB detour costs ~1.3us; its payoff is")
	fmt.Println("shorter paths, balanced links and relieved contention under load")
	fmt.Println("(run `itbsim -exp throughput` to see the throughput side).")
}
